// The fault-campaign oracle: randomized workloads under programmed and
// randomized storage-fault schedules (EIO, ENOSPC, short and torn
// writes, fsync failure, the fsyncgate trap, a lying fsync, rename and
// directory-sync failures), each run ending in a simulated power loss
// and recovery. Two invariants define correctness:
//
//   1. Durability of acks: every commit acknowledged as durable
//      survives crash recovery (all schedules except the lying fsync —
//      no software survives a kernel that reports fsync success while
//      dropping the bytes).
//   2. Prefix property: recovery always yields EXACTLY the state after
//      some acknowledged commit, in commit-version order — never a torn
//      or reordered state. This one holds under every schedule,
//      including the lying fsync (where a durably-torn checkpoint may
//      instead make recovery refuse loudly — an explicit error, never a
//      silently wrong state).
//
// Alongside the campaign, the degraded-mode contract: a WAL fault flips
// the manager into read-only degraded mode (reads and read-only commits
// keep working, writers fail fast with Unavailable naming the cause),
// and TryReopenWal restores write service once the schedule clears.
//
// TXMOD_FAULT_ITERATIONS scales the randomized sweep (CI stress sets it
// high); TXMOD_TEST_ARTIFACT_DIR keeps failing runs' files for upload.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/common/vfs.h"
#include "src/core/subsystem.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

class FaultCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* artifact_dir = std::getenv("TXMOD_TEST_ARTIFACT_DIR");
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::filesystem::path base =
        artifact_dir != nullptr ? std::filesystem::path(artifact_dir)
                                : std::filesystem::temp_directory_path();
    dir_ = base / StrCat("txmod_faults_", ::getpid(), "_", info->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    const bool keep = ::testing::Test::HasFailure() &&
                      std::getenv("TXMOD_TEST_ARTIFACT_DIR") != nullptr;
    if (!keep) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::filesystem::path dir_;
};

int FaultIterations(int fallback) {
  const char* env = std::getenv("TXMOD_FAULT_ITERATIONS");
  if (env == nullptr) return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

/// One full campaign run: build a WAL-backed manager over `vfs`, arm
/// `schedule`, run a seeded random workload (inserts, deletes, aborting
/// transactions, read-only queries, checkpoints, reopen attempts),
/// crash, recover, and check the two invariants. `lying_fsync` relaxes
/// invariant 1 (ack durability) to invariant 2 only (exact acked
/// prefix).
void RunCampaign(const std::filesystem::path& dir, uint64_t seed,
                 const std::vector<FaultSpec>& schedule, bool lying_fsync,
                 const std::string& label, uint32_t wal_shards = 1) {
  SCOPED_TRACE(StrCat(label, " seed=", seed, " shards=", wal_shards));
  FaultInjectingVfs vfs;
  // Every campaign is an independent universe: reusing a path would make
  // Create adopt the previous campaign's crashed WAL/checkpoint as a live
  // log to resume — stale records from that run could then replay over
  // this run's checkpoint.
  static std::atomic<uint64_t> campaign_counter{0};
  const uint64_t run_id = campaign_counter.fetch_add(1);
  TxnManagerOptions options;
  options.wal_path =
      (dir / StrCat("wal_", run_id, "_", seed, "_", wal_shards, ".log"))
          .string();
  options.checkpoint_path =
      (dir / StrCat("ckpt_", run_id, "_", seed, "_", wal_shards, ".db"))
          .string();
  options.vfs = &vfs;
  options.sync_commits = true;
  options.wal_shards = wal_shards;

  Database db = bench::MakeKeyFkDatabase(8, 20);
  bench::AddUnreferencedKeys(&db, 4);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager, TxnManager::Create(&ics, options));

  // The durability oracle: the committed state after every acknowledged
  // write commit (index 0 = the seed state, acked by Create's initial
  // checkpoint). An ack is RunText returning committed && installed.
  std::vector<Database> acked_states;
  acked_states.push_back(db.Clone());

  for (const FaultSpec& spec : schedule) vfs.InjectFault(spec);

  std::mt19937_64 rng(seed);
  int next_id = 500'000 + static_cast<int>(seed % 1000) * 100;
  for (int op = 0; op < 28; ++op) {
    const uint64_t what = rng() % 12;
    if (what == 0) {
      (void)manager->Checkpoint();  // may fault; recovery decides
    } else if (what == 1) {
      // Read-only query: acknowledged, but never durable state.
      auto result =
          manager->RunText("tmp := select[amount > 9000.0](fk_rel);");
      if (result.ok()) {
        EXPECT_FALSE(result->installed);
      }
    } else if (what == 2) {
      if (manager->degraded()) (void)manager->TryReopenWal();
    } else if (what == 3) {
      // Integrity abort (dangling ref): acknowledged as aborted, and
      // must never leave any durable trace.
      auto result = manager->RunText(
          StrCat("insert(fk_rel, {(", next_id++, ", \"nope\", 1.0)});"));
      if (result.ok()) {
        EXPECT_FALSE(result->committed);
      }
    } else if (what == 4) {
      // Multi-relation write: its log record fans out across shards
      // when the WAL is sharded, so the crash can land between the
      // shard appends of one commit.
      const int id = next_id++;
      auto result = manager->RunText(
          StrCat("insert(key_rel, {(\"f", id, "\", \"payload\")}); ",
                 "insert(fk_rel, {(", id, ", \"f", id, "\", 2.0)});"));
      if (result.ok() && result->committed && result->installed) {
        acked_states.push_back(db.Clone());
      }
    } else {
      const std::string text =
          (what % 4 == 0)
              ? StrCat("delete(key_rel, {(\"x", rng() % 4,
                       "\", \"payload\")});")
              : StrCat("insert(fk_rel, {(", next_id++, ", \"k", rng() % 8,
                       "\", 2.0)});");
      auto result = manager->RunText(text);
      if (result.ok() && result->committed && result->installed) {
        acked_states.push_back(db.Clone());
      }
    }
  }
  const uint64_t fired = vfs.faults_fired();
  manager.reset();  // drop the WAL handle before the power cut

  vfs.SimulateCrash();
  auto recovered = TxnManager::Recover(options);
  if (!recovered.ok()) {
    // A lying fsync can durably install a torn or empty checkpoint (the
    // tmp file's bytes were dropped but reported safe, then the rename
    // landed). Recovery cannot restore what the hardware never wrote;
    // the best possible outcome is this loud refusal — never a silently
    // wrong state. Only lying schedules may take this exit.
    EXPECT_TRUE(lying_fsync)
        << "recovery after crash failed: " << recovered.status().ToString();
    return;
  }

  // Invariant 2: the recovered state is EXACTLY some acked state (the
  // states are cumulative, so matching one means an in-order prefix of
  // acknowledged commits — never a torn or reordered state).
  std::size_t matched = acked_states.size();
  for (std::size_t i = acked_states.size(); i-- > 0;) {
    if (recovered->SameState(acked_states[i], /*compare_time=*/false)) {
      matched = i;
      break;
    }
  }
  ASSERT_LT(matched, acked_states.size())
      << "recovered a state that matches no acknowledged prefix ("
      << acked_states.size() - 1 << " acked commits, " << fired
      << " faults fired)";

  // Invariant 1: with an honest (if failing) fsync, every acked commit
  // survives.
  if (!lying_fsync) {
    EXPECT_EQ(matched, acked_states.size() - 1)
        << "a commit acknowledged as durable did not survive the crash ("
        << fired << " faults fired)";
  }
}

FaultSpec Spec(VfsOp op, FaultKind kind, uint64_t nth, bool sticky = false,
               std::string path_substring = "") {
  FaultSpec spec;
  spec.op = op;
  spec.kind = kind;
  spec.nth = nth;
  spec.sticky = sticky;
  spec.path_substring = std::move(path_substring);
  return spec;
}

TEST_F(FaultCampaignTest, CleanRunBaselineRecoversEverything) {
  RunCampaign(dir_, 1, {}, /*lying_fsync=*/false, "no faults");
}

TEST_F(FaultCampaignTest, EveryProgrammedFaultPointHoldsTheInvariants) {
  struct Point {
    const char* label;
    FaultSpec spec;
    bool lying;
  };
  const std::vector<Point> points = {
      {"wal write EIO", Spec(VfsOp::kWrite, FaultKind::kEIO, 3, false, "wal"),
       false},
      {"wal write ENOSPC sticky",
       Spec(VfsOp::kWrite, FaultKind::kENOSPC, 4, true, "wal"), false},
      {"short write", Spec(VfsOp::kWrite, FaultKind::kShortWrite, 2), false},
      {"torn wal write",
       Spec(VfsOp::kWrite, FaultKind::kTornWrite, 3, false, "wal"), false},
      {"wal fsync EIO", Spec(VfsOp::kFsync, FaultKind::kEIO, 2, false, "wal"),
       false},
      {"fsyncgate", Spec(VfsOp::kFsync, FaultKind::kFsyncGate, 2, false,
                         "wal"),
       false},
      {"fsync lie", Spec(VfsOp::kFsync, FaultKind::kFsyncLie, 2, false,
                         "wal"),
       true},
      {"checkpoint rename EIO", Spec(VfsOp::kRename, FaultKind::kEIO, 1),
       false},
      {"directory fsync EIO", Spec(VfsOp::kDirSync, FaultKind::kEIO, 2),
       false},
      {"checkpoint write EIO",
       Spec(VfsOp::kWrite, FaultKind::kEIO, 1, false, "ckpt"), false},
      {"open EIO", Spec(VfsOp::kOpen, FaultKind::kEIO, 2), false},
      {"truncate EIO", Spec(VfsOp::kTruncate, FaultKind::kEIO, 1), false},
  };
  for (const Point& point : points) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      RunCampaign(dir_, seed, {point.spec}, point.lying, point.label);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(FaultCampaignTest, RandomizedSchedulesHoldTheInvariants) {
  const int iterations = FaultIterations(12);
  std::mt19937_64 meta(20260808u);
  const VfsOp ops[] = {VfsOp::kOpen,     VfsOp::kWrite,  VfsOp::kFsync,
                       VfsOp::kTruncate, VfsOp::kRename, VfsOp::kRemove,
                       VfsOp::kDirSync};
  const FaultKind kinds[] = {FaultKind::kEIO, FaultKind::kENOSPC,
                             FaultKind::kShortWrite, FaultKind::kTornWrite,
                             FaultKind::kFsyncGate, FaultKind::kFsyncLie};
  for (int i = 0; i < iterations; ++i) {
    std::vector<FaultSpec> schedule;
    bool lying = false;
    const int count = 1 + static_cast<int>(meta() % 3);
    for (int s = 0; s < count; ++s) {
      FaultSpec spec;
      spec.op = ops[meta() % (sizeof(ops) / sizeof(ops[0]))];
      spec.kind = kinds[meta() % (sizeof(kinds) / sizeof(kinds[0]))];
      // Write faults may be any kind; other ops only fail or lie.
      if (spec.op != VfsOp::kWrite &&
          (spec.kind == FaultKind::kShortWrite ||
           spec.kind == FaultKind::kTornWrite)) {
        spec.kind = FaultKind::kEIO;
      }
      if (spec.op != VfsOp::kFsync && spec.op != VfsOp::kDirSync &&
          (spec.kind == FaultKind::kFsyncGate ||
           spec.kind == FaultKind::kFsyncLie)) {
        spec.kind = FaultKind::kEIO;
      }
      if (spec.op == VfsOp::kDirSync && spec.kind == FaultKind::kFsyncGate) {
        spec.kind = FaultKind::kEIO;
      }
      spec.nth = 1 + meta() % 6;
      spec.sticky = (meta() % 3) == 0;
      if (spec.kind == FaultKind::kFsyncLie) lying = true;
      schedule.push_back(spec);
    }
    RunCampaign(dir_, 1000 + static_cast<uint64_t>(i), schedule, lying,
                StrCat("random schedule ", i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Sharded-WAL campaign: the same two invariants must hold when the log
// is split across per-shard append streams — fault points now include
// torn tails on individual shards and crashes between the shard appends
// of one commit's fan-out.
// ---------------------------------------------------------------------------

TEST_F(FaultCampaignTest, ShardedCleanRunBaselineRecoversEverything) {
  RunCampaign(dir_, 1, {}, /*lying_fsync=*/false, "no faults",
              /*wal_shards=*/3);
}

TEST_F(FaultCampaignTest, ShardedProgrammedFaultPointsHoldTheInvariants) {
  struct Point {
    const char* label;
    FaultSpec spec;
    bool lying;
  };
  const std::vector<Point> points = {
      {"wal write EIO", Spec(VfsOp::kWrite, FaultKind::kEIO, 3, false, "wal"),
       false},
      // Aimed at one stream: the torn tail or lost append poisons only
      // shard 1's file, but the invariants are log-wide.
      {"shard1 write EIO",
       Spec(VfsOp::kWrite, FaultKind::kEIO, 2, false, ".shard1"), false},
      {"shard1 torn write",
       Spec(VfsOp::kWrite, FaultKind::kTornWrite, 2, false, ".shard1"),
       false},
      {"shard0 fsync EIO",
       Spec(VfsOp::kFsync, FaultKind::kEIO, 2, false, ".shard0"), false},
      {"shard2 fsyncgate",
       Spec(VfsOp::kFsync, FaultKind::kFsyncGate, 2, false, ".shard2"),
       false},
      {"fsync lie on a shard",
       Spec(VfsOp::kFsync, FaultKind::kFsyncLie, 2, false, ".shard"), true},
      {"checkpoint rename EIO", Spec(VfsOp::kRename, FaultKind::kEIO, 1),
       false},
      {"truncate EIO", Spec(VfsOp::kTruncate, FaultKind::kEIO, 1), false},
  };
  for (const Point& point : points) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      RunCampaign(dir_, seed, {point.spec}, point.lying, point.label,
                  /*wal_shards=*/3);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(FaultCampaignTest, ShardedRandomizedSchedulesHoldTheInvariants) {
  const int iterations = FaultIterations(12);
  std::mt19937_64 meta(20270808u);
  const VfsOp ops[] = {VfsOp::kOpen,     VfsOp::kWrite,  VfsOp::kFsync,
                       VfsOp::kTruncate, VfsOp::kRename, VfsOp::kRemove,
                       VfsOp::kDirSync};
  const FaultKind kinds[] = {FaultKind::kEIO, FaultKind::kENOSPC,
                             FaultKind::kShortWrite, FaultKind::kTornWrite,
                             FaultKind::kFsyncGate, FaultKind::kFsyncLie};
  for (int i = 0; i < iterations; ++i) {
    const uint32_t shards = 1 + static_cast<uint32_t>(i % 4);
    std::vector<FaultSpec> schedule;
    bool lying = false;
    const int count = 1 + static_cast<int>(meta() % 3);
    for (int s = 0; s < count; ++s) {
      FaultSpec spec;
      spec.op = ops[meta() % (sizeof(ops) / sizeof(ops[0]))];
      spec.kind = kinds[meta() % (sizeof(kinds) / sizeof(kinds[0]))];
      if (spec.op != VfsOp::kWrite &&
          (spec.kind == FaultKind::kShortWrite ||
           spec.kind == FaultKind::kTornWrite)) {
        spec.kind = FaultKind::kEIO;
      }
      if (spec.op != VfsOp::kFsync && spec.op != VfsOp::kDirSync &&
          (spec.kind == FaultKind::kFsyncGate ||
           spec.kind == FaultKind::kFsyncLie)) {
        spec.kind = FaultKind::kEIO;
      }
      if (spec.op == VfsOp::kDirSync && spec.kind == FaultKind::kFsyncGate) {
        spec.kind = FaultKind::kEIO;
      }
      spec.nth = 1 + meta() % 6;
      spec.sticky = (meta() % 3) == 0;
      // Half the schedules aim at one specific stream.
      if (meta() % 2 == 0) {
        spec.path_substring = StrCat(".shard", meta() % shards);
      }
      if (spec.kind == FaultKind::kFsyncLie) lying = true;
      schedule.push_back(spec);
    }
    RunCampaign(dir_, 2000 + static_cast<uint64_t>(i), schedule, lying,
                StrCat("sharded random schedule ", i), shards);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(FaultCampaignTest, CrashBetweenShardAppendsDropsThePartialFanOut) {
  // Find a shard count under which the two relations route to different
  // shards, so one commit's record genuinely fans out into two parts.
  uint32_t shards = 0;
  for (uint32_t n = 2; n <= 4; ++n) {
    if (ShardedWal::ShardOf("fk_rel", n) != ShardedWal::ShardOf("key_rel", n)) {
      shards = n;
      break;
    }
  }
  ASSERT_GT(shards, 0u) << "no shard count separates fk_rel and key_rel";
  const uint32_t high_shard =
      std::max(ShardedWal::ShardOf("fk_rel", shards),
               ShardedWal::ShardOf("key_rel", shards));

  FaultInjectingVfs vfs;
  TxnManagerOptions options;
  options.wal_path = (dir_ / "wal.log").string();
  options.checkpoint_path = (dir_ / "ckpt.db").string();
  options.vfs = &vfs;
  options.sync_commits = true;
  options.wal_shards = shards;

  Database db = bench::MakeKeyFkDatabase(8, 20);
  bench::AddUnreferencedKeys(&db, 4);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager, TxnManager::Create(&ics, options));
  ASSERT_TRUE(manager->wal()->sharded());

  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(800001, \"k1\", 2.0)});").status());
  const Database before = db.Clone();
  const uint64_t version_before = manager->committed_version();

  // AppendCommit writes parts in ascending shard order; failing the next
  // write to the HIGHER shard leaves the lower shard's part behind — the
  // crash between the shard appends of one commit.
  vfs.InjectFault(Spec(VfsOp::kWrite, FaultKind::kEIO, 1, /*sticky=*/false,
                       StrCat(".shard", high_shard)));
  auto failing = manager->RunText(
      "insert(key_rel, {(\"f800002\", \"payload\")}); "
      "insert(fk_rel, {(800002, \"f800002\", 2.0)});");
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), StatusCode::kUnavailable);

  // The commit was never acknowledged; it must not linger in memory,
  // and the manager is degraded.
  EXPECT_TRUE(manager->degraded());
  EXPECT_TRUE(db.SameState(before, /*compare_time=*/true));
  EXPECT_EQ(manager->committed_version(), version_before);

  // Crash and recover: the partial fan-out on the lower shard must be
  // dropped — recovery yields exactly the acked prefix.
  manager.reset();
  vfs.SimulateCrash();
  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options, &stats));
  EXPECT_TRUE(recovered.SameState(before, /*compare_time=*/false))
      << "recovery must drop the partial fan-out";
}

TEST_F(FaultCampaignTest, WalFsyncFailureDegradesAndTryReopenWalRecovers) {
  FaultInjectingVfs vfs;
  TxnManagerOptions options;
  options.wal_path = (dir_ / "wal.log").string();
  options.checkpoint_path = (dir_ / "ckpt.db").string();
  options.vfs = &vfs;

  Database db = bench::MakeKeyFkDatabase(8, 20);
  bench::AddUnreferencedKeys(&db, 4);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager, TxnManager::Create(&ics, options));

  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(600001, \"k1\", 2.0)});").status());
  const Database before_fault = db.Clone();

  // Every WAL fsync fails from now on.
  vfs.InjectFault(Spec(VfsOp::kFsync, FaultKind::kEIO, 1, /*sticky=*/true,
                       "wal"));
  auto failing =
      manager->RunText("insert(fk_rel, {(600002, \"k2\", 2.0)});");
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), StatusCode::kUnavailable);

  // Degraded: flag set, cause named, the unacked commit not visible.
  std::string cause;
  EXPECT_TRUE(manager->degraded(&cause));
  EXPECT_NE(cause.find("fsync"), std::string::npos);
  EXPECT_TRUE(db.SameState(before_fault, /*compare_time=*/true))
      << "the unacknowledged commit must be unwound from memory";

  // Reads and read-only commits keep working.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult readonly,
      manager->RunText("tmp := select[amount > 0.0](fk_rel);"));
  EXPECT_TRUE(readonly.committed);
  EXPECT_FALSE(readonly.installed);

  // Writers fail FAST with Unavailable naming the cause — no WAL I/O.
  const uint64_t appends_before = manager->stats().wal_appends;
  auto rejected =
      manager->RunText("insert(fk_rel, {(600003, \"k3\", 2.0)});");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("degraded"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("fsync"), std::string::npos);
  EXPECT_EQ(manager->stats().wal_appends, appends_before);
  EXPECT_GE(manager->stats().unavailable_rejections, 1u);

  // While the fault persists, TryReopenWal fails and degraded sticks.
  EXPECT_FALSE(manager->TryReopenWal().ok());
  EXPECT_TRUE(manager->degraded());

  // Schedule clears: TryReopenWal restores write service.
  vfs.ClearFaults();
  TXMOD_ASSERT_OK(manager->TryReopenWal());
  EXPECT_FALSE(manager->degraded());
  EXPECT_EQ(manager->stats().wal_reopens, 1u);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult resumed,
      manager->RunText("insert(fk_rel, {(600004, \"k4\", 2.0)});"));
  EXPECT_TRUE(resumed.committed);

  // And the post-recovery commit is durable: crash + recover finds it.
  manager.reset();
  vfs.SimulateCrash();
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options));
  EXPECT_TRUE(recovered.SameState(db, /*compare_time=*/false));
}

TEST_F(FaultCampaignTest, AppendFaultDegradesWithoutInstalling) {
  FaultInjectingVfs vfs;
  TxnManagerOptions options;
  options.wal_path = (dir_ / "wal.log").string();
  options.checkpoint_path = (dir_ / "ckpt.db").string();
  options.vfs = &vfs;

  Database db = bench::MakeKeyFkDatabase(8, 20);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager, TxnManager::Create(&ics, options));
  const Database before = db.Clone();
  const uint64_t version_before = manager->committed_version();

  vfs.InjectFault(Spec(VfsOp::kWrite, FaultKind::kENOSPC, 1, /*sticky=*/true,
                       "wal"));
  auto failing =
      manager->RunText("insert(fk_rel, {(700001, \"k1\", 2.0)});");
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(failing.status().message().find("no space left"),
            std::string::npos)
      << "the error must name the original cause";
  EXPECT_TRUE(manager->degraded());
  EXPECT_TRUE(db.SameState(before, /*compare_time=*/true));
  EXPECT_EQ(manager->committed_version(), version_before);
  EXPECT_EQ(manager->stats().wal_failures, 1u);
}

}  // namespace
}  // namespace txmod::txn
