// Robustness sweeps: the three parsers must never crash, hang, or
// mistranslate on malformed input — every outcome is either a parse or a
// clean error Status. Seeded random token soup, plus mutations of valid
// inputs (truncation, token deletion), in the spirit of fuzzing but
// deterministic and fast enough for every CI run.

#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/common/frame.h"
#include "src/common/str_util.h"
#include "src/net/protocol.h"
#include "src/rules/rule_parser.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using testing::MakeBeerDatabase;

const char* const kVocabulary[] = {
    "forall", "exists", "in",      "and",     "or",      "not",
    "implies", "select", "project", "join",    "semijoin", "antijoin",
    "insert", "delete", "update",  "alarm",   "abort",   "when",
    "if",     "then",   "ins",     "del",     "old",     "dplus",
    "dminus", "sum",    "avg",     "min",     "max",     "cnt",
    "mlt",    "beer",   "brewery", "x",       "y",       "name",
    "alcohol", "(",     ")",       "[",       "]",       "{",
    "}",      ",",      ";",       ".",       ":=",      "=",
    "!=",     "<",      "<=",      ">",       ">=",      "=>",
    "+",      "-",      "*",       "/",       "0",       "1",
    "42",     "3.5",    "\"txt\"", "null",    "begin",   "end",
};

std::string RandomSoup(std::mt19937* gen, int tokens) {
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kVocabulary) - 1);
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kVocabulary[pick(*gen)];
    out += ' ';
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, CalculusParserNeverCrashes) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> len(1, 40);
  for (int i = 0; i < 200; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto result = calculus::ParseFormula(input);
    if (result.ok()) {
      // Whatever parsed must print and re-parse stably.
      auto again = calculus::ParseFormula(result->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << result->ToString();
    }
  }
}

TEST_P(FuzzTest, AlgebraParserNeverCrashes) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  std::mt19937 gen(GetParam() + 100);
  std::uniform_int_distribution<int> len(1, 40);
  for (int i = 0; i < 200; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto program = parser.ParseProgram(input);
    if (program.ok()) {
      auto again = parser.ParseProgram(program->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << program->ToString();
    }
  }
}

TEST_P(FuzzTest, RuleParserNeverCrashes) {
  Database db = MakeBeerDatabase();
  std::mt19937 gen(GetParam() + 200);
  std::uniform_int_distribution<int> len(1, 50);
  for (int i = 0; i < 100; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto rule = rules::ParseRule("fuzz", input, db.schema());
    (void)rule;  // any Status is acceptable; crashes/hangs are not
  }
}

TEST_P(FuzzTest, TruncationsOfValidInputsFailCleanly) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  const std::string valid_formula =
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))";
  const std::string valid_program =
      "t := project[brewery](beer) - project[name](brewery); "
      "insert(brewery, project[brewery, null, null](t));";
  std::mt19937 gen(GetParam() + 300);
  std::uniform_int_distribution<std::size_t> cut_formula(
      0, valid_formula.size() - 1);
  std::uniform_int_distribution<std::size_t> cut_program(
      0, valid_program.size() - 1);
  for (int i = 0; i < 100; ++i) {
    (void)calculus::ParseFormula(valid_formula.substr(0, cut_formula(gen)));
    (void)parser.ParseProgram(valid_program.substr(0, cut_program(gen)));
  }
}

TEST_P(FuzzTest, WireCodecsNeverCrashOnRandomBytes) {
  // The network-facing decoders (frame, request, response, outcome,
  // key-value) accept bytes straight off a socket: arbitrary input must
  // produce a message or a clean error, never a crash, hang, or
  // out-of-bounds read.
  std::mt19937 gen(GetParam() + 400);
  std::uniform_int_distribution<int> len(0, 120);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int i = 0; i < 300; ++i) {
    std::string input;
    const int n = len(gen);
    for (int b = 0; b < n; ++b) {
      input.push_back(static_cast<char>(byte(gen)));
    }
    std::string payload;
    std::size_t consumed = 0;
    (void)TryDecodeFrame(input, 0, 4096, &payload, &consumed);
    (void)net::DecodeRequest(input);
    (void)net::DecodeResponse(input);
    (void)net::DecodeOutcome(input);
    (void)net::DecodeKeyValues(input);
  }
}

TEST_P(FuzzTest, WireCodecMutationsOfValidMessagesFailCleanly) {
  // Truncations and single-byte corruptions of well-formed messages:
  // decoding either succeeds (the mutation kept it well-formed) or
  // fails with a Status — and every successful decode re-encodes.
  net::Outcome outcome;
  outcome.committed = true;
  outcome.commit_version = 1234567;
  outcome.attempts = 3;
  outcome.reason = "multi\nline reason";
  const std::string valid = net::EncodeOutcome(outcome);
  std::mt19937 gen(GetParam() + 500);
  std::uniform_int_distribution<std::size_t> cut(0, valid.size());
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int i = 0; i < 200; ++i) {
    (void)net::DecodeOutcome(valid.substr(0, cut(gen)));
    std::string mutated = valid;
    mutated[pos(gen)] = static_cast<char>(byte(gen));
    auto decoded = net::DecodeOutcome(mutated);
    if (decoded.ok()) {
      (void)net::EncodeOutcome(*decoded);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 5));

// --- seeded round-trip property ---------------------------------------------
// Generate structurally valid inputs (not token soup), then require the
// full loop  parse -> ToString -> reparse  to reproduce an equivalent AST.
// This pins the printers to the grammar: any precedence or quoting bug in
// ToString shows up as a reparse failure or an AST mismatch.

/// Generates a valid calculus formula over the beer schema. `bound` lists
/// variables already bound to a relation, so leaf atoms stay well-scoped.
std::string GenFormula(std::mt19937* gen, int depth,
                       std::vector<std::pair<std::string, std::string>>*
                           bound) {
  auto pick = [gen](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(*gen);
  };
  auto atom = [&]() -> std::string {
    if (!bound->empty()) {
      const auto& [var, rel] = (*bound)[static_cast<std::size_t>(
          pick(static_cast<int>(bound->size())))];
      if (rel == "beer") {
        switch (pick(4)) {
          case 0: return var + ".alcohol >= 0";
          case 1: return var + ".alcohol < 10.5";
          case 2: return var + ".name != \"bock\"";
          default: return var + ".type = \"pilsener\"";
        }
      }
      switch (pick(3)) {
        case 0: return var + ".country = \"netherlands\"";
        case 1: return var + ".city != \"utrecht\"";
        default: return var + ".name = \"grolsche\"";
      }
    }
    switch (pick(3)) {
      case 0: return "cnt(beer) <= 40";
      case 1: return "sum(beer, alcohol) >= 0";
      default: return "1 = 0";
    }
  };
  if (depth <= 0) return atom();
  switch (pick(6)) {
    case 0: {  // forall v (v in R implies ...)
      const std::string rel = pick(2) == 0 ? "beer" : "brewery";
      const std::string var = StrCat("v", bound->size());
      bound->emplace_back(var, rel);
      const std::string body = GenFormula(gen, depth - 1, bound);
      bound->pop_back();
      return StrCat("forall ", var, " (", var, " in ", rel, " implies ",
                    body, ")");
    }
    case 1: {  // exists v (v in R and ...)
      const std::string rel = pick(2) == 0 ? "beer" : "brewery";
      const std::string var = StrCat("v", bound->size());
      bound->emplace_back(var, rel);
      const std::string body = GenFormula(gen, depth - 1, bound);
      bound->pop_back();
      return StrCat("exists ", var, " (", var, " in ", rel, " and ", body,
                    ")");
    }
    case 2:
      return StrCat("(", GenFormula(gen, depth - 1, bound), " and ",
                    GenFormula(gen, depth - 1, bound), ")");
    case 3:
      return StrCat("(", GenFormula(gen, depth - 1, bound), " or ",
                    GenFormula(gen, depth - 1, bound), ")");
    case 4:
      return StrCat("not (", GenFormula(gen, depth - 1, bound), ")");
    default:
      return StrCat("(", GenFormula(gen, depth - 1, bound), " implies ",
                    GenFormula(gen, depth - 1, bound), ")");
  }
}

TEST_P(FuzzTest, CalculusRoundTripPreservesAst) {
  std::mt19937 gen(GetParam() + 400);
  std::uniform_int_distribution<int> depth(0, 4);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::pair<std::string, std::string>> bound;
    const std::string text = GenFormula(&gen, depth(gen), &bound);
    auto first = calculus::ParseFormula(text);
    ASSERT_TRUE(first.ok()) << text << " -> " << first.status().ToString();
    const std::string printed = first->ToString();
    auto second = calculus::ParseFormula(printed);
    ASSERT_TRUE(second.ok())
        << text << " -> " << printed << " -> " << second.status().ToString();
    EXPECT_TRUE(first->Equals(*second))
        << "AST changed across round-trip:\n  " << text << "\n  " << printed
        << "\n  " << second->ToString();
    // ToString must be a fixpoint after one round.
    EXPECT_EQ(printed, second->ToString());
  }
}

/// Generates a valid beer-schema relational expression (all combinators
/// preserve the beer schema, so selects/predicates stay resolvable).
std::string GenBeerExpr(std::mt19937* gen, int depth) {
  auto pick = [gen](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(*gen);
  };
  auto pred = [&]() -> std::string {
    switch (pick(4)) {
      case 0: return "alcohol > 3.5";
      case 1: return "alcohol <= 9";
      case 2: return "name != \"bock\"";
      default: return "type = \"pilsener\" and alcohol >= 1";
    }
  };
  if (depth <= 0) {
    switch (pick(4)) {
      case 0: return "beer";
      case 1: return "old(beer)";
      case 2: return "dplus(beer)";
      default: return "dminus(beer)";
    }
  }
  switch (pick(6)) {
    case 0:
      return StrCat("select[", pred(), "](", GenBeerExpr(gen, depth - 1),
                    ")");
    case 1:
      return StrCat("(", GenBeerExpr(gen, depth - 1), " union ",
                    GenBeerExpr(gen, depth - 1), ")");
    case 2:
      return StrCat("(", GenBeerExpr(gen, depth - 1), " - ",
                    GenBeerExpr(gen, depth - 1), ")");
    case 3:
      return StrCat("intersect(", GenBeerExpr(gen, depth - 1), ", ",
                    GenBeerExpr(gen, depth - 1), ")");
    case 4:
      return StrCat("semijoin[l.brewery = r.name](",
                    GenBeerExpr(gen, depth - 1), ", brewery)");
    default:
      return StrCat("antijoin[l.brewery = r.name](",
                    GenBeerExpr(gen, depth - 1), ", brewery)");
  }
}

TEST_P(FuzzTest, AlgebraExpressionRoundTripPreservesAst) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  std::mt19937 gen(GetParam() + 500);
  std::uniform_int_distribution<int> depth(0, 4);
  for (int i = 0; i < 200; ++i) {
    const std::string text = GenBeerExpr(&gen, depth(gen));
    auto first = parser.ParseExpression(text);
    ASSERT_TRUE(first.ok()) << text << " -> " << first.status().ToString();
    const std::string printed = (*first)->ToString();
    auto second = parser.ParseExpression(printed);
    ASSERT_TRUE(second.ok())
        << text << " -> " << printed << " -> " << second.status().ToString();
    EXPECT_TRUE((*first)->Equals(**second))
        << "AST changed across round-trip:\n  " << text << "\n  " << printed
        << "\n  " << (*second)->ToString();
    EXPECT_EQ(printed, (*second)->ToString());
  }
}

TEST_P(FuzzTest, AlgebraProgramRoundTripIsStable) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  std::mt19937 gen(GetParam() + 600);
  std::uniform_int_distribution<int> depth(0, 3);
  std::uniform_int_distribution<int> stmt_count(1, 4);
  for (int i = 0; i < 100; ++i) {
    std::string text;
    const int n = stmt_count(gen);
    for (int s = 0; s < n; ++s) {
      switch (std::uniform_int_distribution<int>(0, 4)(gen)) {
        case 0:
          text += StrCat("t", s, " := ", GenBeerExpr(&gen, depth(gen)), "; ");
          break;
        case 1:
          text += StrCat("insert(beer, ", GenBeerExpr(&gen, depth(gen)),
                         "); ");
          break;
        case 2:
          text += StrCat("delete(beer, ", GenBeerExpr(&gen, depth(gen)),
                         "); ");
          break;
        case 3:
          text += StrCat("alarm(", GenBeerExpr(&gen, depth(gen)),
                         ", \"non-empty\"); ");
          break;
        default:
          text += "update(beer, alcohol > 50, alcohol := alcohol - 1); ";
          break;
      }
    }
    auto first = parser.ParseProgram(text);
    ASSERT_TRUE(first.ok()) << text << " -> " << first.status().ToString();
    const std::string printed = first->ToString();
    // Program has no structural Equals; the printer being a fixpoint under
    // reparse is the equivalent stability guarantee.
    algebra::AlgebraParser reparser(&db.schema());
    auto second = reparser.ParseProgram(printed);
    ASSERT_TRUE(second.ok())
        << text << " -> " << printed << " -> " << second.status().ToString();
    EXPECT_EQ(printed, second->ToString()) << "printer not stable:\n" << text;
  }
}

}  // namespace
}  // namespace txmod
