// Robustness sweeps: the three parsers must never crash, hang, or
// mistranslate on malformed input — every outcome is either a parse or a
// clean error Status. Seeded random token soup, plus mutations of valid
// inputs (truncation, token deletion), in the spirit of fuzzing but
// deterministic and fast enough for every CI run.

#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/rules/rule_parser.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using testing::MakeBeerDatabase;

const char* const kVocabulary[] = {
    "forall", "exists", "in",      "and",     "or",      "not",
    "implies", "select", "project", "join",    "semijoin", "antijoin",
    "insert", "delete", "update",  "alarm",   "abort",   "when",
    "if",     "then",   "ins",     "del",     "old",     "dplus",
    "dminus", "sum",    "avg",     "min",     "max",     "cnt",
    "mlt",    "beer",   "brewery", "x",       "y",       "name",
    "alcohol", "(",     ")",       "[",       "]",       "{",
    "}",      ",",      ";",       ".",       ":=",      "=",
    "!=",     "<",      "<=",      ">",       ">=",      "=>",
    "+",      "-",      "*",       "/",       "0",       "1",
    "42",     "3.5",    "\"txt\"", "null",    "begin",   "end",
};

std::string RandomSoup(std::mt19937* gen, int tokens) {
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kVocabulary) - 1);
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kVocabulary[pick(*gen)];
    out += ' ';
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, CalculusParserNeverCrashes) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> len(1, 40);
  for (int i = 0; i < 200; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto result = calculus::ParseFormula(input);
    if (result.ok()) {
      // Whatever parsed must print and re-parse stably.
      auto again = calculus::ParseFormula(result->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << result->ToString();
    }
  }
}

TEST_P(FuzzTest, AlgebraParserNeverCrashes) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  std::mt19937 gen(GetParam() + 100);
  std::uniform_int_distribution<int> len(1, 40);
  for (int i = 0; i < 200; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto program = parser.ParseProgram(input);
    if (program.ok()) {
      auto again = parser.ParseProgram(program->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << program->ToString();
    }
  }
}

TEST_P(FuzzTest, RuleParserNeverCrashes) {
  Database db = MakeBeerDatabase();
  std::mt19937 gen(GetParam() + 200);
  std::uniform_int_distribution<int> len(1, 50);
  for (int i = 0; i < 100; ++i) {
    const std::string input = RandomSoup(&gen, len(gen));
    auto rule = rules::ParseRule("fuzz", input, db.schema());
    (void)rule;  // any Status is acceptable; crashes/hangs are not
  }
}

TEST_P(FuzzTest, TruncationsOfValidInputsFailCleanly) {
  Database db = MakeBeerDatabase();
  algebra::AlgebraParser parser(&db.schema());
  const std::string valid_formula =
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))";
  const std::string valid_program =
      "t := project[brewery](beer) - project[name](brewery); "
      "insert(brewery, project[brewery, null, null](t));";
  std::mt19937 gen(GetParam() + 300);
  std::uniform_int_distribution<std::size_t> cut_formula(
      0, valid_formula.size() - 1);
  std::uniform_int_distribution<std::size_t> cut_program(
      0, valid_program.size() - 1);
  for (int i = 0; i < 100; ++i) {
    (void)calculus::ParseFormula(valid_formula.substr(0, cut_formula(gen)));
    (void)parser.ParseProgram(valid_program.substr(0, cut_program(gen)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace txmod
