#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/relational/database.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using testing::MakeBeerDatabase;

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("x").as_string(), "x");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, IdentityIsTypeExact) {
  // Set-semantics identity distinguishes Int(1) from Double(1.0)...
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, PredicateComparisonCoercesNumerics) {
  // ...while CL predicate comparison coerces numerics (Section 4.1's PV).
  using O = Value::Ordering;
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(1.0)), O::kEqual);
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(1.5)), O::kLess);
  EXPECT_EQ(Value::Compare(Value::String("a"), Value::String("b")), O::kLess);
  EXPECT_EQ(Value::Compare(Value::String("a"), Value::Int(1)),
            O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Int(1)), O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), O::kEqual);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("ab").Hash(), Value::String("ab").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(6).ToString(), "6.0");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, TotalOrder) {
  EXPECT_TRUE(Value::Less(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(Value::Less(Value::Int(3), Value::Int(5)));
  EXPECT_TRUE(Value::Less(Value::Int(5), Value::Double(0.0)));  // by type tag
  EXPECT_TRUE(Value::Less(Value::Double(1.0), Value::String("")));
  EXPECT_FALSE(Value::Less(Value::Int(5), Value::Int(5)));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value::Int(1), Value::String("x")});
  Tuple b({Value::Int(1), Value::String("x")});
  Tuple c({Value::Int(2), Value::String("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ConcatAndToString) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::String("x"), Value::Null()});
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.ToString(), "(1, \"x\", null)");
}

TEST(TupleTest, LexicographicLess) {
  Tuple a({Value::Int(1), Value::Int(2)});
  Tuple b({Value::Int(1), Value::Int(3)});
  Tuple shorter({Value::Int(1)});
  EXPECT_TRUE(Tuple::Less(a, b));
  EXPECT_FALSE(Tuple::Less(b, a));
  EXPECT_TRUE(Tuple::Less(shorter, a));
}

TEST(SchemaTest, AttributeIndexLookup) {
  RelationSchema s("r", {Attribute{"a", AttrType::kInt},
                         Attribute{"b", AttrType::kString}});
  TXMOD_ASSERT_OK_AND_ASSIGN(int idx, s.AttributeIndex("b"));
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(s.AttributeIndex("zzz").ok());
}

TEST(SchemaTest, CheckTupleTypes) {
  RelationSchema s("r", {Attribute{"a", AttrType::kInt},
                         Attribute{"b", AttrType::kDouble},
                         Attribute{"c", AttrType::kString}});
  TXMOD_EXPECT_OK(s.CheckTuple(
      Tuple({Value::Int(1), Value::Double(2.0), Value::String("x")})));
  // Int widens into double attributes.
  TXMOD_EXPECT_OK(
      s.CheckTuple(Tuple({Value::Int(1), Value::Int(2), Value::String("x")})));
  // Null is allowed anywhere (Example 4.2 inserts nulls).
  TXMOD_EXPECT_OK(
      s.CheckTuple(Tuple({Value::Null(), Value::Null(), Value::Null()})));
  // Arity mismatch.
  EXPECT_FALSE(s.CheckTuple(Tuple({Value::Int(1)})).ok());
  // Type mismatch.
  EXPECT_FALSE(
      s.CheckTuple(Tuple({Value::String("x"), Value::Int(1), Value::Null()}))
          .ok());
  // Double does not narrow into int attributes.
  EXPECT_FALSE(
      s.CheckTuple(
           Tuple({Value::Double(1.5), Value::Int(1), Value::String("x")}))
          .ok());
}

TEST(SchemaTest, CoerceTupleWidensInts) {
  RelationSchema s("r", {Attribute{"a", AttrType::kDouble}});
  Tuple t = s.CoerceTuple(Tuple({Value::Int(6)}));
  EXPECT_EQ(t.at(0), Value::Double(6.0));
}

TEST(DatabaseSchemaTest, AddAndFind) {
  DatabaseSchema schema;
  TXMOD_ASSERT_OK(
      schema.AddRelation(RelationSchema("r", {Attribute{"a", AttrType::kInt}})));
  EXPECT_TRUE(schema.Contains("r"));
  EXPECT_FALSE(schema.Contains("s"));
  EXPECT_FALSE(
      schema.AddRelation(RelationSchema("r", {Attribute{"a", AttrType::kInt}}))
          .ok());
  TXMOD_ASSERT_OK_AND_ASSIGN(const RelationSchema* found, schema.Find("r"));
  EXPECT_EQ(found->name(), "r");
}

TEST(RelationTest, SetSemantics) {
  auto schema = std::make_shared<const RelationSchema>(
      "r", std::vector<Attribute>{Attribute{"a", AttrType::kInt}});
  Relation r(schema);
  EXPECT_TRUE(r.Insert(Tuple({Value::Int(1)})));
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1)})));  // duplicate: no-op
  EXPECT_TRUE(r.Insert(Tuple({Value::Int(2)})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple({Value::Int(1)})));
  EXPECT_TRUE(r.Erase(Tuple({Value::Int(1)})));
  EXPECT_FALSE(r.Erase(Tuple({Value::Int(1)})));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SortedTuplesDeterministic) {
  auto schema = std::make_shared<const RelationSchema>(
      "r", std::vector<Attribute>{Attribute{"a", AttrType::kInt}});
  Relation r(schema);
  r.Insert(Tuple({Value::Int(3)}));
  r.Insert(Tuple({Value::Int(1)}));
  r.Insert(Tuple({Value::Int(2)}));
  auto sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].at(0).as_int(), 1);
  EXPECT_EQ(sorted[2].at(0).as_int(), 3);
}

TEST(DatabaseTest, CreateFindAndTime) {
  Database db = MakeBeerDatabase();
  EXPECT_TRUE(db.Contains("beer"));
  EXPECT_TRUE(db.Contains("brewery"));
  EXPECT_FALSE(db.Contains("wine"));
  EXPECT_EQ(db.logical_time(), 0u);
  db.AdvanceTime();
  EXPECT_EQ(db.logical_time(), 1u);
}

TEST(DatabaseTest, CloneIsDeepAndSameState) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Database copy = db.Clone();
  EXPECT_TRUE(db.SameState(copy));
  testing::AddBeer(&copy, "stout", "stout", "guinness", 4.2);
  EXPECT_FALSE(db.SameState(copy));
  EXPECT_EQ((*db.Find("beer"))->size(), 1u);
  EXPECT_EQ((*copy.Find("beer"))->size(), 2u);
}

// ---------------------------------------------------------------------------
// Exact numeric predicate comparison (the 2^53 audit): int/int and
// int/double comparisons never lose exactness to double widening, and
// KeyHash provably agrees with Compare equality.
// ---------------------------------------------------------------------------

TEST(ValueTest, CompareIsExactAbove2Pow53) {
  using O = Value::Ordering;
  const int64_t big = int64_t{1} << 53;
  // Both widen to the same double; exact comparison keeps them apart.
  EXPECT_EQ(Value::Compare(Value::Int(big), Value::Int(big + 1)), O::kLess);
  EXPECT_EQ(Value::Compare(Value::Int(big + 1), Value::Int(big)),
            O::kGreater);
  // double(2^53) == 2^53 exactly; 2^53 + 1 is strictly above it.
  const double big_d = static_cast<double>(big);
  EXPECT_EQ(Value::Compare(Value::Int(big), Value::Double(big_d)),
            O::kEqual);
  EXPECT_EQ(Value::Compare(Value::Int(big + 1), Value::Double(big_d)),
            O::kGreater);
  EXPECT_EQ(Value::Compare(Value::Double(big_d), Value::Int(big + 1)),
            O::kLess);
  // Doubles beyond the int64 range compare correctly against any int64.
  EXPECT_EQ(Value::Compare(Value::Int(INT64_MAX), Value::Double(1e19)),
            O::kLess);
  EXPECT_EQ(Value::Compare(Value::Int(INT64_MIN), Value::Double(-1e19)),
            O::kGreater);
  // Fractions around an equal whole part.
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(1.5)), O::kLess);
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(0.5)), O::kGreater);
  EXPECT_EQ(Value::Compare(Value::Int(0), Value::Double(-0.5)), O::kGreater);
}

TEST(ValueTest, CompareTreatsNanAsIncomparable) {
  using O = Value::Ordering;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Value::Compare(Value::Double(nan), Value::Double(nan)),
            O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Double(nan), Value::Double(1.0)),
            O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(nan)),
            O::kIncomparable);
}

TEST(ValueTest, KeyHashAgreesWithCompareEquality) {
  const int64_t big = int64_t{1} << 53;
  const std::vector<Value> values = {
      Value::Int(0),      Value::Double(0.0),  Value::Double(-0.0),
      Value::Int(1),      Value::Double(1.0),  Value::Double(1.5),
      Value::Int(big),    Value::Int(big + 1), Value::Double(double(big)),
      Value::Int(-7),     Value::Double(-7.0), Value::String("7"),
      Value::Null(),      Value::Double(1e300)};
  // The invariant the join hash tables and relation indexes rely on:
  // predicate-equal values never hash apart.
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (Value::Compare(a, b) == Value::Ordering::kEqual) {
        EXPECT_EQ(a.KeyHash(), b.KeyHash())
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Relation equi-key indexes: declaration, incremental maintenance, and the
// copy/move contract.
// ---------------------------------------------------------------------------

std::size_t ProbeCount(const Relation& rel, const std::vector<int>& attrs,
                       const Tuple& key) {
  const RelationIndex* index = rel.FindIndex(attrs);
  EXPECT_NE(index, nullptr);
  if (index == nullptr) return 0;
  std::vector<int> probe_attrs;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    probe_attrs.push_back(static_cast<int>(i));
  }
  auto [begin, end] = index->Probe(EquiKeyHash(key, probe_attrs));
  std::size_t n = 0;
  for (auto it = begin; it != end; ++it) ++n;
  return n;
}

/// Probe through the overlay-aware view — the path the evaluator takes.
std::size_t ViewProbeCount(const Relation& rel, const std::vector<int>& attrs,
                           const Tuple& key) {
  RelationIndexView view = rel.FindIndexView(attrs);
  EXPECT_TRUE(view.valid());
  if (!view.valid()) return 0;
  std::vector<int> probe_attrs;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    probe_attrs.push_back(static_cast<int>(i));
  }
  auto cand = view.Probe(EquiKeyHash(key, probe_attrs));
  std::size_t n = 0;
  while (cand.Next() != nullptr) ++n;
  return n;
}

TEST(RelationIndexTest, MaintainedThroughInsertAndErase) {
  Database db = MakeBeerDatabase();
  Relation* beer = *db.FindMutable("beer");
  ASSERT_NE(beer->IndexOn({2}), nullptr);  // brewery attribute
  EXPECT_EQ(beer->FindIndex({2})->size(), 0u);

  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  testing::AddBeer(&db, "stout", "stout", "guinness", 4.2);
  testing::AddBeer(&db, "free", "lager", "heineken", 0.0);
  EXPECT_EQ(beer->FindIndex({2})->size(), 3u);
  EXPECT_EQ(ProbeCount(*beer, {2}, Tuple({Value::String("heineken")})), 2u);

  EXPECT_TRUE(beer->Erase(Tuple({Value::String("free"), Value::String("lager"),
                                 Value::String("heineken"),
                                 Value::Double(0.0)})));
  EXPECT_EQ(ProbeCount(*beer, {2}, Tuple({Value::String("heineken")})), 1u);

  beer->Clear();
  EXPECT_EQ(beer->FindIndex({2})->size(), 0u);
}

TEST(RelationIndexTest, DeclaredLateIndexesExistingTuples) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  testing::AddBeer(&db, "stout", "stout", "guinness", 4.2);
  Relation* beer = *db.FindMutable("beer");
  const RelationIndex* index = beer->IndexOn({2});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 2u);
  // Re-declaring the same attrs returns the existing index.
  EXPECT_EQ(beer->IndexOn({2}), index);
  EXPECT_EQ(beer->index_count(), 1u);
}

TEST(RelationIndexTest, InvalidAttrsAreRejected) {
  Database db = MakeBeerDatabase();
  Relation* beer = *db.FindMutable("beer");
  EXPECT_EQ(beer->IndexOn({}), nullptr);
  EXPECT_EQ(beer->IndexOn({4}), nullptr);
  EXPECT_EQ(beer->IndexOn({-1}), nullptr);
  EXPECT_EQ(beer->index_count(), 0u);
}

TEST(RelationIndexTest, CopiesDropIndexesMovesKeepThem) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Relation* beer = *db.FindMutable("beer");
  ASSERT_NE(beer->IndexOn({2}), nullptr);

  Relation copy = *beer;
  EXPECT_EQ(copy.index_count(), 0u);  // pointers into the source's set
  EXPECT_EQ(copy.size(), 1u);

  Relation moved = std::move(copy);
  EXPECT_EQ(moved.size(), 1u);

  Relation moved_indexed = std::move(*beer);
  EXPECT_EQ(moved_indexed.index_count(), 1u);
  EXPECT_EQ(ProbeCount(moved_indexed, {2},
                       Tuple({Value::String("heineken")})),
            1u);
}

TEST(RelationIndexTest, KeyHashUnifiesIntAndDoubleKeys) {
  Relation rel(std::make_shared<const RelationSchema>(
      "r", std::vector<Attribute>{Attribute{"v", AttrType::kDouble}}));
  rel.Insert(Tuple({Value::Double(1.0)}));
  ASSERT_NE(rel.IndexOn({0}), nullptr);
  // An Int(1) probe key lands in the Double(1.0) bucket: the index hash
  // agrees with predicate equality, not identity.
  EXPECT_EQ(ProbeCount(rel, {0}, Tuple({Value::Int(1)})), 1u);
}

// ---------------------------------------------------------------------------
// Copy-on-write snapshots and the SameState/logical-time contract.
// ---------------------------------------------------------------------------

TEST(DatabaseSnapshotTest, SameStateIgnoresTimeByDefaultAndPinsItOnRequest) {
  // The long-standing asymmetry, now explicit: Clone() always copies the
  // logical time, but SameState compares only contents unless asked —
  // so a recovered database can compare equal to the live one it
  // mirrors, while histories can still be distinguished on demand.
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Database clone = db.Clone();
  EXPECT_EQ(clone.logical_time(), db.logical_time());

  clone.AdvanceTime();
  EXPECT_TRUE(db.SameState(clone));  // contents equal, times differ
  EXPECT_FALSE(db.SameState(clone, /*compare_time=*/true));
  EXPECT_TRUE(db.SameState(db.Clone(), /*compare_time=*/true));

  Relation* beer = *clone.FindMutable("beer");
  beer->Insert(Tuple({Value::String("alt"), Value::String("ale"),
                      Value::String("heineken"), Value::Double(4.0)}));
  EXPECT_FALSE(db.SameState(clone));
}

TEST(DatabaseSnapshotTest, CloneIsASnapshotIsolatedFromWriters) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Database snapshot = db.Clone();

  // Writer mutates the master; the snapshot must keep reading D^t.
  Relation* beer = *db.FindMutable("beer");
  beer->Insert(Tuple({Value::String("new"), Value::String("ale"),
                      Value::String("heineken"), Value::Double(4.5)}));
  EXPECT_EQ((*db.Find("beer"))->size(), 2u);
  EXPECT_EQ((*snapshot.Find("beer"))->size(), 1u);

  // And the other direction: snapshot writes never leak into the master.
  Relation* snap_beer = *snapshot.FindMutable("beer");
  snap_beer->Insert(Tuple({Value::String("priv"), Value::String("ale"),
                           Value::String("heineken"), Value::Double(4.0)}));
  EXPECT_EQ((*snapshot.Find("beer"))->size(), 2u);
  EXPECT_EQ((*db.Find("beer"))->size(), 2u);
  EXPECT_FALSE((*db.Find("beer"))->Contains(
      Tuple({Value::String("priv"), Value::String("ale"),
             Value::String("heineken"), Value::Double(4.0)})));
}

TEST(DatabaseSnapshotTest, CopyOnWriteRedeclaresIndexes) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Relation* beer = *db.FindMutable("beer");
  ASSERT_NE(beer->IndexOn({2}), nullptr);
  ASSERT_EQ(beer->DeclaredIndexes(),
            (std::vector<std::vector<int>>{{2}}));

  // Take a snapshot, then write through the master: the un-shared state
  // (an overlay here) must carry the declared index — mirrored as an
  // empty level-local index the view composes with the base's.
  Database snapshot = db.Clone();
  Relation* cow = *db.FindMutable("beer");
  EXPECT_TRUE(cow->is_overlay());
  EXPECT_EQ(cow->index_count(), 1u);
  EXPECT_EQ(cow->DeclaredIndexes(), (std::vector<std::vector<int>>{{2}}));
  cow->Insert(Tuple({Value::String("ipa"), Value::String("ale"),
                     Value::String("heineken"), Value::Double(6.5)}));
  EXPECT_EQ(ViewProbeCount(*cow, {2}, Tuple({Value::String("heineken")})),
            2u);

  // The snapshot's side un-shares on ITS first write, too.
  Relation* snap = *snapshot.FindMutable("beer");
  EXPECT_EQ(snap->index_count(), 1u);
  EXPECT_EQ(snap->size(), 1u);

  // With overlays disabled the legacy O(|R|) clone path re-declares the
  // index as a directly probeable flat index.
  Database clone_mode = MakeBeerDatabase();
  testing::AddBeer(&clone_mode, "pils", "lager", "heineken", 5.0);
  clone_mode.set_overlay_enabled(false);
  (*clone_mode.FindMutable("beer"))->IndexOn({2});
  Database clone_snapshot = clone_mode.Clone();
  clone_snapshot.set_overlay_enabled(false);
  Relation* cloned = *clone_mode.FindMutable("beer");
  EXPECT_FALSE(cloned->is_overlay());
  EXPECT_EQ(ProbeCount(*cloned, {2}, Tuple({Value::String("heineken")})),
            1u);
}

// ---------------------------------------------------------------------------
// Overlay states: base ∪ plus ∖ minus semantics, iteration, index views,
// compaction, and the cost pins that prove first-write is O(|delta|).
// ---------------------------------------------------------------------------

Tuple BeerTuple(const std::string& name, const std::string& type,
                const std::string& brewery, double pct) {
  return Tuple({Value::String(name), Value::String(type),
                Value::String(brewery), Value::Double(pct)});
}

TEST(OverlayTest, InsertEraseResurrectOverSharedBase) {
  auto base = std::make_shared<Relation>(MakeBeerDatabase().Find("beer")
                                             .value()
                                             ->schema_ptr());
  base->Insert(BeerTuple("pils", "lager", "heineken", 5.0));
  base->Insert(BeerTuple("stout", "stout", "guinness", 4.2));

  Relation overlay = Relation::MakeOverlay(base);
  EXPECT_TRUE(overlay.is_overlay());
  EXPECT_EQ(overlay.overlay_depth(), 1u);
  EXPECT_EQ(overlay.size(), 2u);
  EXPECT_TRUE(overlay.Contains(BeerTuple("pils", "lager", "heineken", 5.0)));

  // Inserting a base-visible tuple is a no-op; a new one lands in plus.
  EXPECT_FALSE(overlay.Insert(BeerTuple("pils", "lager", "heineken", 5.0)));
  EXPECT_TRUE(overlay.Insert(BeerTuple("ipa", "ale", "brewdog", 6.5)));
  EXPECT_EQ(overlay.size(), 3u);

  // Deleting a base tuple shadows it; the base itself is untouched.
  EXPECT_TRUE(overlay.Erase(BeerTuple("stout", "stout", "guinness", 4.2)));
  EXPECT_FALSE(overlay.Contains(BeerTuple("stout", "stout", "guinness", 4.2)));
  EXPECT_EQ(overlay.size(), 2u);
  EXPECT_TRUE(base->Contains(BeerTuple("stout", "stout", "guinness", 4.2)));

  // Re-inserting a shadowed base tuple resurrects it (minus shrinks; the
  // plus set must NOT grow a duplicate).
  EXPECT_TRUE(overlay.Insert(BeerTuple("stout", "stout", "guinness", 4.2)));
  EXPECT_TRUE(overlay.Contains(BeerTuple("stout", "stout", "guinness", 4.2)));
  EXPECT_EQ(overlay.size(), 3u);

  // Erasing a local insert removes it outright.
  EXPECT_TRUE(overlay.Erase(BeerTuple("ipa", "ale", "brewdog", 6.5)));
  EXPECT_FALSE(overlay.Erase(BeerTuple("ipa", "ale", "brewdog", 6.5)));
  EXPECT_EQ(overlay.size(), 2u);
  EXPECT_TRUE(overlay.SameTuples(*base));
}

TEST(OverlayTest, IterationAndSortedTuplesSeeVisibleContents) {
  auto base = std::make_shared<Relation>(MakeBeerDatabase().Find("beer")
                                             .value()
                                             ->schema_ptr());
  for (int i = 0; i < 8; ++i) {
    base->Insert(BeerTuple("b" + std::to_string(i), "lager", "x", 4.0));
  }
  Relation overlay = Relation::MakeOverlay(base);
  overlay.Erase(BeerTuple("b3", "lager", "x", 4.0));
  overlay.Insert(BeerTuple("new", "ale", "y", 6.0));

  std::size_t seen = 0;
  bool saw_deleted = false, saw_new = false;
  for (const Tuple& t : overlay) {
    ++seen;
    if (t == BeerTuple("b3", "lager", "x", 4.0)) saw_deleted = true;
    if (t == BeerTuple("new", "ale", "y", 6.0)) saw_new = true;
  }
  EXPECT_EQ(seen, overlay.size());
  EXPECT_EQ(seen, 8u);
  EXPECT_FALSE(saw_deleted);
  EXPECT_TRUE(saw_new);
  EXPECT_EQ(overlay.SortedTuples().size(), 8u);

  // A second overlay level on top of the first: both deltas compose.
  auto mid = std::make_shared<Relation>(std::move(overlay));
  Relation top = Relation::MakeOverlay(mid);
  EXPECT_EQ(top.overlay_depth(), 2u);
  top.Erase(BeerTuple("new", "ale", "y", 6.0));  // delete an inner insert
  top.Insert(BeerTuple("b3", "lager", "x", 4.0));  // resurrect inner delete
  EXPECT_EQ(top.size(), 8u);
  EXPECT_TRUE(top.Contains(BeerTuple("b3", "lager", "x", 4.0)));
  EXPECT_FALSE(top.Contains(BeerTuple("new", "ale", "y", 6.0)));
  EXPECT_TRUE(top.SameTuples(*base));
}

TEST(OverlayTest, IndexViewComposesLevelsAndFiltersDeletes) {
  auto base = std::make_shared<Relation>(MakeBeerDatabase().Find("beer")
                                             .value()
                                             ->schema_ptr());
  base->Insert(BeerTuple("pils", "lager", "heineken", 5.0));
  base->Insert(BeerTuple("free", "lager", "heineken", 0.0));
  base->Insert(BeerTuple("stout", "stout", "guinness", 4.2));
  base->IndexOn({2});

  Relation overlay = Relation::MakeOverlay(base);
  // Raw FindIndex is unsound on a chain and must refuse...
  EXPECT_EQ(overlay.FindIndex({2}), nullptr);
  // ...while the view composes base candidates with local ones.
  overlay.Insert(BeerTuple("extra", "ale", "heineken", 6.0));
  overlay.Erase(BeerTuple("free", "lager", "heineken", 0.0));
  EXPECT_EQ(ViewProbeCount(overlay, {2}, Tuple({Value::String("heineken")})),
            2u);
  EXPECT_EQ(ViewProbeCount(overlay, {2}, Tuple({Value::String("guinness")})),
            1u);

  // An undeclared attribute list yields an invalid view (scan fallback).
  EXPECT_FALSE(overlay.FindIndexView({0}).valid());
}

TEST(OverlayTest, CollapseAndMergePreserveContentsAndIndexes) {
  auto base = std::make_shared<Relation>(MakeBeerDatabase().Find("beer")
                                             .value()
                                             ->schema_ptr());
  for (int i = 0; i < 16; ++i) {
    base->Insert(BeerTuple("b" + std::to_string(i), "lager", "x", 4.0));
  }
  base->IndexOn({2});

  Relation a = Relation::MakeOverlay(base);
  a.Erase(BeerTuple("b0", "lager", "x", 4.0));
  a.Insert(BeerTuple("n0", "ale", "y", 6.0));
  const std::vector<Tuple> expected = [&] {
    auto mid = std::make_shared<Relation>(a);
    Relation top = Relation::MakeOverlay(mid);
    top.Erase(BeerTuple("b1", "lager", "x", 4.0));
    top.Insert(BeerTuple("n1", "ale", "y", 6.0));
    return top.SortedTuples();
  }();

  // Merge the two overlay levels into one; contents are unchanged and the
  // merged level still probes through the view.
  auto mid = std::make_shared<Relation>(std::move(a));
  Relation top = Relation::MakeOverlay(mid);
  top.Erase(BeerTuple("b1", "lager", "x", 4.0));
  top.Insert(BeerTuple("n1", "ale", "y", 6.0));
  ASSERT_EQ(top.overlay_depth(), 2u);
  EXPECT_TRUE(top.MergeOverlayLevel());
  EXPECT_EQ(top.overlay_depth(), 1u);
  EXPECT_EQ(top.SortedTuples(), expected);
  EXPECT_EQ(ViewProbeCount(top, {2}, Tuple({Value::String("x")})), 14u);

  // Collapse flattens and rebuilds the declared index as a flat one.
  top.CollapseOverlay();
  EXPECT_FALSE(top.is_overlay());
  EXPECT_EQ(top.SortedTuples(), expected);
  EXPECT_EQ(ProbeCount(top, {2}, Tuple({Value::String("x")})), 14u);
  EXPECT_EQ(ProbeCount(top, {2}, Tuple({Value::String("y")})), 2u);
}

TEST(OverlayTest, FirstWriteDoesNotScanTheBase) {
  // THE cost pin of this change: un-sharing a 10^4-tuple relation for a
  // one-tuple write must clone nothing — CowStats counts every cloned
  // tuple, so "zero cloned tuples" is "never scanned the base".
  Database db = MakeBeerDatabase();
  for (int i = 0; i < 10000; ++i) {
    testing::AddBeer(&db, "beer" + std::to_string(i), "lager", "x", 4.0);
  }
  Database snapshot = db.Clone();  // shares every relation

  CowStats::Reset();
  Relation* rel = *db.FindMutable("beer");
  rel->Insert(BeerTuple("one-more", "ale", "y", 6.0));
  EXPECT_EQ(CowStats::relation_clones.load(), 0u);
  EXPECT_EQ(CowStats::cloned_tuples.load(), 0u);
  EXPECT_EQ(CowStats::overlays_created.load(), 1u);
  EXPECT_EQ(rel->delta_weight(), 1u);
  EXPECT_EQ(rel->size(), 10001u);
  EXPECT_EQ((*snapshot.Find("beer"))->size(), 10000u);

  // The clone baseline pays the O(|R|) bill — the comparison the
  // overlay-vs-clone oracle and BM_SessionFirstWrite are built on.
  Database clone_db = snapshot.Clone();
  clone_db.set_overlay_enabled(false);
  CowStats::Reset();
  (*clone_db.FindMutable("beer"))->Insert(BeerTuple("x", "ale", "y", 1.0));
  EXPECT_EQ(CowStats::relation_clones.load(), 1u);
  EXPECT_EQ(CowStats::cloned_tuples.load(), 10000u);
  EXPECT_EQ(CowStats::overlays_created.load(), 0u);
}

TEST(OverlayTest, CompactOverlayMergesSmallDeltasAndCollapsesLargeOnes) {
  Database db = MakeBeerDatabase();
  for (int i = 0; i < 512; ++i) {
    testing::AddBeer(&db, "b" + std::to_string(i), "lager", "x", 4.0);
  }

  // Small deltas: repeated snapshot/write/compact rounds must keep the
  // chain shallow (geometric merging) without collapsing every round.
  std::vector<Database> snapshots;
  for (int round = 0; round < 12; ++round) {
    snapshots.push_back(db.Clone());  // forces un-share next write
    Relation* rel = *db.FindMutable("beer");
    rel->Insert(BeerTuple("r" + std::to_string(round), "ale", "y", 5.0));
    rel->CompactOverlay();
    EXPECT_LE(rel->overlay_depth(), 5u) << "round " << round;
  }
  EXPECT_EQ((*db.Find("beer"))->size(), 512u + 12u);

  // A large delta (≥ half the base) collapses flat.
  Database snap = db.Clone();
  Relation* rel = *db.FindMutable("beer");
  for (int i = 0; i < 400; ++i) {
    rel->Insert(BeerTuple("big" + std::to_string(i), "ale", "z", 5.0));
  }
  CowStats::Reset();
  rel->CompactOverlay();
  EXPECT_FALSE(rel->is_overlay());
  EXPECT_GE(CowStats::overlay_collapses.load(), 1u);
  EXPECT_EQ(rel->size(), 512u + 12u + 400u);
}

}  // namespace
}  // namespace txmod
