#include "gtest/gtest.h"
#include "src/relational/database.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using testing::MakeBeerDatabase;

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("x").as_string(), "x");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, IdentityIsTypeExact) {
  // Set-semantics identity distinguishes Int(1) from Double(1.0)...
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, PredicateComparisonCoercesNumerics) {
  // ...while CL predicate comparison coerces numerics (Section 4.1's PV).
  using O = Value::Ordering;
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(1.0)), O::kEqual);
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Double(1.5)), O::kLess);
  EXPECT_EQ(Value::Compare(Value::String("a"), Value::String("b")), O::kLess);
  EXPECT_EQ(Value::Compare(Value::String("a"), Value::Int(1)),
            O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Int(1)), O::kIncomparable);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), O::kEqual);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("ab").Hash(), Value::String("ab").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(6).ToString(), "6.0");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, TotalOrder) {
  EXPECT_TRUE(Value::Less(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(Value::Less(Value::Int(3), Value::Int(5)));
  EXPECT_TRUE(Value::Less(Value::Int(5), Value::Double(0.0)));  // by type tag
  EXPECT_TRUE(Value::Less(Value::Double(1.0), Value::String("")));
  EXPECT_FALSE(Value::Less(Value::Int(5), Value::Int(5)));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value::Int(1), Value::String("x")});
  Tuple b({Value::Int(1), Value::String("x")});
  Tuple c({Value::Int(2), Value::String("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ConcatAndToString) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::String("x"), Value::Null()});
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.ToString(), "(1, \"x\", null)");
}

TEST(TupleTest, LexicographicLess) {
  Tuple a({Value::Int(1), Value::Int(2)});
  Tuple b({Value::Int(1), Value::Int(3)});
  Tuple shorter({Value::Int(1)});
  EXPECT_TRUE(Tuple::Less(a, b));
  EXPECT_FALSE(Tuple::Less(b, a));
  EXPECT_TRUE(Tuple::Less(shorter, a));
}

TEST(SchemaTest, AttributeIndexLookup) {
  RelationSchema s("r", {Attribute{"a", AttrType::kInt},
                         Attribute{"b", AttrType::kString}});
  TXMOD_ASSERT_OK_AND_ASSIGN(int idx, s.AttributeIndex("b"));
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(s.AttributeIndex("zzz").ok());
}

TEST(SchemaTest, CheckTupleTypes) {
  RelationSchema s("r", {Attribute{"a", AttrType::kInt},
                         Attribute{"b", AttrType::kDouble},
                         Attribute{"c", AttrType::kString}});
  TXMOD_EXPECT_OK(s.CheckTuple(
      Tuple({Value::Int(1), Value::Double(2.0), Value::String("x")})));
  // Int widens into double attributes.
  TXMOD_EXPECT_OK(
      s.CheckTuple(Tuple({Value::Int(1), Value::Int(2), Value::String("x")})));
  // Null is allowed anywhere (Example 4.2 inserts nulls).
  TXMOD_EXPECT_OK(
      s.CheckTuple(Tuple({Value::Null(), Value::Null(), Value::Null()})));
  // Arity mismatch.
  EXPECT_FALSE(s.CheckTuple(Tuple({Value::Int(1)})).ok());
  // Type mismatch.
  EXPECT_FALSE(
      s.CheckTuple(Tuple({Value::String("x"), Value::Int(1), Value::Null()}))
          .ok());
  // Double does not narrow into int attributes.
  EXPECT_FALSE(
      s.CheckTuple(
           Tuple({Value::Double(1.5), Value::Int(1), Value::String("x")}))
          .ok());
}

TEST(SchemaTest, CoerceTupleWidensInts) {
  RelationSchema s("r", {Attribute{"a", AttrType::kDouble}});
  Tuple t = s.CoerceTuple(Tuple({Value::Int(6)}));
  EXPECT_EQ(t.at(0), Value::Double(6.0));
}

TEST(DatabaseSchemaTest, AddAndFind) {
  DatabaseSchema schema;
  TXMOD_ASSERT_OK(
      schema.AddRelation(RelationSchema("r", {Attribute{"a", AttrType::kInt}})));
  EXPECT_TRUE(schema.Contains("r"));
  EXPECT_FALSE(schema.Contains("s"));
  EXPECT_FALSE(
      schema.AddRelation(RelationSchema("r", {Attribute{"a", AttrType::kInt}}))
          .ok());
  TXMOD_ASSERT_OK_AND_ASSIGN(const RelationSchema* found, schema.Find("r"));
  EXPECT_EQ(found->name(), "r");
}

TEST(RelationTest, SetSemantics) {
  auto schema = std::make_shared<const RelationSchema>(
      "r", std::vector<Attribute>{Attribute{"a", AttrType::kInt}});
  Relation r(schema);
  EXPECT_TRUE(r.Insert(Tuple({Value::Int(1)})));
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1)})));  // duplicate: no-op
  EXPECT_TRUE(r.Insert(Tuple({Value::Int(2)})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple({Value::Int(1)})));
  EXPECT_TRUE(r.Erase(Tuple({Value::Int(1)})));
  EXPECT_FALSE(r.Erase(Tuple({Value::Int(1)})));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SortedTuplesDeterministic) {
  auto schema = std::make_shared<const RelationSchema>(
      "r", std::vector<Attribute>{Attribute{"a", AttrType::kInt}});
  Relation r(schema);
  r.Insert(Tuple({Value::Int(3)}));
  r.Insert(Tuple({Value::Int(1)}));
  r.Insert(Tuple({Value::Int(2)}));
  auto sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].at(0).as_int(), 1);
  EXPECT_EQ(sorted[2].at(0).as_int(), 3);
}

TEST(DatabaseTest, CreateFindAndTime) {
  Database db = MakeBeerDatabase();
  EXPECT_TRUE(db.Contains("beer"));
  EXPECT_TRUE(db.Contains("brewery"));
  EXPECT_FALSE(db.Contains("wine"));
  EXPECT_EQ(db.logical_time(), 0u);
  db.AdvanceTime();
  EXPECT_EQ(db.logical_time(), 1u);
}

TEST(DatabaseTest, CloneIsDeepAndSameState) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "heineken", 5.0);
  Database copy = db.Clone();
  EXPECT_TRUE(db.SameState(copy));
  testing::AddBeer(&copy, "stout", "stout", "guinness", 4.2);
  EXPECT_FALSE(db.SameState(copy));
  EXPECT_EQ((*db.Find("beer"))->size(), 1u);
  EXPECT_EQ((*copy.Find("beer"))->size(), 2u);
}

}  // namespace
}  // namespace txmod
