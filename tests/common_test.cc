#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/lexer.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/str_util.h"

namespace txmod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "invalid argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kAborted}) {
    EXPECT_STRNE(StatusCodeToString(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TXMOD_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(bad.ok());
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

TEST(StrUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("beer"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(LexerTest, TokenizesIdentifiersAndNumbers) {
  auto tokens = Tokenize("beer x1 42 3.5 1e3");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 6u);  // 5 tokens + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "beer");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[2].int_value, 42);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[3].float_value, 3.5);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[4].float_value, 1000.0);
}

TEST(LexerTest, AttributeSelectionIsNotAFloat) {
  // "x.1" must lex as IDENT '.' INT (attribute selection, Definition 4.2),
  // while "1.5" is a float.
  auto tokens = Tokenize("x.1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_TRUE((*tokens)[1].IsOp("."));
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kInt);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize("\"hello \\\"world\\\"\\n\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].string_value, "hello \"world\"\n");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize(":= != <> <= >= =>");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> expected = {":=", "!=", "<>", "<=", ">=", "=>"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE((*tokens)[i].IsOp(expected[i].c_str())) << expected[i];
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("a -- this is a comment\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("FORALL Forall forall");
  ASSERT_TRUE(tokens.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*tokens)[i].IsKeyword("forall"));
  }
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(LexerTest, DescribePosition) {
  auto tokens = Tokenize("a\nbb ccc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(DescribePosition("a\nbb ccc", (*tokens)[2]), "line 2, column 4");
}

TEST(LexerTest, Int64BoundariesLexExactly) {
  auto tokens = Tokenize("9223372036854775807");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, INT64_MAX);
  // INT64_MIN's digits: the lexer sees '-' as an operator, so the
  // magnitude 9223372036854775808 alone must be rejected — it does not
  // fit int64 as a positive literal.
  EXPECT_FALSE(Tokenize("9223372036854775808").ok());
}

TEST(LexerTest, IntOverflowIsAnErrorNotSaturation) {
  // Pre-fix, strtoll silently saturated these to INT64_MAX: a literal
  // the user wrote was replaced by a different number.
  for (const char* text :
       {"9223372036854775808", "99999999999999999999",
        "184467440737095516150", "123456789012345678901234567890"}) {
    auto tokens = Tokenize(text);
    ASSERT_FALSE(tokens.ok()) << text;
    EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(tokens.status().message().find("out of range"),
              std::string::npos)
        << tokens.status().ToString();
  }
}

TEST(LexerTest, FloatOverflowIsAnErrorUnderflowIsNot) {
  // Overflow saturates strtod to +-HUGE_VAL with ERANGE: reject.
  EXPECT_FALSE(Tokenize("1e999").ok());
  EXPECT_FALSE(Tokenize("1e309").ok());
  // Large-but-representable is fine.
  auto big = Tokenize("1e308");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)[0].kind, TokenKind::kFloat);
  // Underflow also raises ERANGE but yields a representable denormal or
  // zero — a usable value, not silent corruption; it must lex.
  auto tiny = Tokenize("1e-400");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ((*tiny)[0].kind, TokenKind::kFloat);
}

}  // namespace
}  // namespace txmod
