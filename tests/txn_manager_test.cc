// TxnManager semantics, deterministically (single-threaded): snapshot
// isolation (sessions read the pinned D^t), first-committer-wins
// validation at both granularities (tuple-level write footprint,
// relation-level read set), integrity-abort validation, read-only
// commits, the validation-window fallback, and equivalence with the
// serial ExecuteTransaction path. The randomized multi-threaded oracle
// lives in tests/concurrent_oracle_test.cc.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::BeerDomainConstraint;
using txmod::testing::BeerRefIntConstraint;
using txmod::testing::MakeBeerDatabase;

struct Fixture {
  Database db;
  std::unique_ptr<core::IntegritySubsystem> ics;
  std::unique_ptr<TxnManager> manager;

  explicit Fixture(TxnManagerOptions options = {}) {
    db = MakeBeerDatabase();
    AddBrewery(&db, "heineken", "amsterdam", "nl");
    AddBrewery(&db, "guinness", "dublin", "ie");
    AddBeer(&db, "lager0", "lager", "heineken", 5.0);
    ics = std::make_unique<core::IntegritySubsystem>(&db);
    EXPECT_TRUE(ics->DefineConstraint("domain", BeerDomainConstraint()).ok());
    EXPECT_TRUE(ics->DefineConstraint("refint", BeerRefIntConstraint()).ok());
    auto created = TxnManager::Create(ics.get(), std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    manager = std::move(*created);
  }
};

bool HasBeer(const Database& db, const std::string& name) {
  const Relation* beer = *db.Find("beer");
  for (const Tuple& t : *beer) {
    if (t.at(0).as_string() == name) return true;
  }
  return false;
}

/// Rebuilds the fixture's initial state for comparison.
Database MakeFixtureState() {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  AddBrewery(&db, "guinness", "dublin", "ie");
  AddBeer(&db, "lager0", "lager", "heineken", 5.0);
  return db;
}

std::string InsertBeerText(const char* name) {
  return StrCat("insert(beer, {(\"", name, "\", \"ale\", \"guinness\", "
                "6.0)});");
}

TEST(TxnManagerTest, SingleSessionCommitInstallsAndAdvances) {
  Fixture f;
  const uint64_t before = f.manager->committed_version();
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult executed,
      session->ExecuteText(
          "insert(beer, {(\"fresh\", \"ale\", \"guinness\", 6.0)});"));
  EXPECT_TRUE(executed.committed);  // ran cleanly; not yet installed
  EXPECT_FALSE(HasBeer(f.db, "fresh")) << "visible before commit";
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, session->Commit());
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.installed);
  EXPECT_EQ(result.commit_version, before + 1);
  EXPECT_TRUE(HasBeer(f.db, "fresh"));
  EXPECT_EQ(f.manager->committed_version(), before + 1);
  EXPECT_EQ(f.manager->stats().commits, 1u);
}

TEST(TxnManagerTest, SnapshotReadsArePinnedToBeginTime) {
  Fixture f;
  auto reader = f.manager->Begin();
  // Another client commits while `reader` is open.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult other,
      f.manager->RunText(
          "insert(beer, {(\"mid\", \"ale\", \"guinness\", 6.0)});"));
  ASSERT_TRUE(other.committed);
  EXPECT_TRUE(HasBeer(f.db, "mid"));
  // The open session still sees D^t of its Begin().
  EXPECT_FALSE(HasBeer(reader->snapshot(), "mid"));
  // And the committed master never sees the session's private writes.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult writes,
      reader->ExecuteText(
          "insert(beer, {(\"priv\", \"ale\", \"guinness\", 6.0)});"));
  EXPECT_TRUE(writes.committed);
  EXPECT_TRUE(HasBeer(reader->snapshot(), "priv"));
  EXPECT_FALSE(HasBeer(f.db, "priv"));
  reader->Abort();
  EXPECT_FALSE(HasBeer(f.db, "priv"));
}

TEST(TxnManagerTest, FirstCommitterWinsOnOverlappingWrites) {
  Fixture f;
  auto first = f.manager->Begin();
  auto second = f.manager->Begin();
  const std::string same =
      "insert(beer, {(\"dup\", \"ale\", \"guinness\", 6.0)});";
  TXMOD_ASSERT_OK(first->ExecuteText(same).status());
  TXMOD_ASSERT_OK(second->ExecuteText(same).status());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult win, first->Commit());
  EXPECT_TRUE(win.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult lose, second->Commit());
  EXPECT_FALSE(lose.committed);
  EXPECT_TRUE(lose.conflict) << lose.abort_reason;
  EXPECT_EQ(f.manager->stats().conflicts, 1u);
}

TEST(TxnManagerTest, DisjointWritesToOneRelationBothCommit) {
  Fixture f;
  auto a = f.manager->Begin();
  auto b = f.manager->Begin();
  // Neither transaction's rule checks read `beer` at base granularity
  // (the differential checks probe dplus(beer) and the brewery side), so
  // disjoint inserts into the same relation must not conflict.
  TXMOD_ASSERT_OK(
      a->ExecuteText("insert(beer, {(\"a1\", \"ale\", \"guinness\", 6.0)});")
          .status());
  TXMOD_ASSERT_OK(
      b->ExecuteText("insert(beer, {(\"b1\", \"ale\", \"heineken\", 5.0)});")
          .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult ra, a->Commit());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult rb, b->Commit());
  EXPECT_TRUE(ra.committed);
  EXPECT_TRUE(rb.committed) << rb.abort_reason;
  EXPECT_TRUE(HasBeer(f.db, "a1"));
  EXPECT_TRUE(HasBeer(f.db, "b1"));
}

TEST(TxnManagerTest, ReadWriteConflictOnRuleCheckedRelation) {
  Fixture f;
  // Inserting a beer reads `brewery` (the referential check probes it);
  // a concurrent commit touching `brewery` must defeat it, even though
  // the two write disjoint relations.
  auto inserter = f.manager->Begin();
  TXMOD_ASSERT_OK(
      inserter
          ->ExecuteText(
              "insert(beer, {(\"rw\", \"ale\", \"guinness\", 6.0)});")
          .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult brewery_commit,
      f.manager->RunText("insert(brewery, {(\"plzen\", \"pilsen\", "
                         "\"cz\")});"));
  ASSERT_TRUE(brewery_commit.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, inserter->Commit());
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.conflict);
  EXPECT_NE(result.abort_reason.find("read-write"), std::string::npos)
      << result.abort_reason;
}

TEST(TxnManagerTest, NoOpInsertIsATupleGranularityRead) {
  Fixture f;
  // T2 "inserts" a beer that already exists in its snapshot — a no-op
  // leaving no differential. T1 concurrently deletes that tuple and
  // commits first. Serially (T1 then T2) the insert would NOT be a
  // no-op, so T2 must conflict, not silently commit nothing.
  auto t2 = f.manager->Begin();
  TXMOD_ASSERT_OK(
      t2->ExecuteText(
            "insert(beer, {(\"lager0\", \"lager\", \"heineken\", 5.0)});")
          .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult del,
      f.manager->RunText(
          "delete(beer, {(\"lager0\", \"lager\", \"heineken\", 5.0)});"));
  ASSERT_TRUE(del.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, t2->Commit());
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.conflict) << result.abort_reason;
}

TEST(TxnManagerTest, IntegrityAbortSurvivesValidationWhenReadsAreStable) {
  Fixture f;
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult executed,
      session->ExecuteText(
          "insert(beer, {(\"orphan\", \"ale\", \"nowhere\", 6.0)});"));
  EXPECT_FALSE(executed.committed);
  EXPECT_FALSE(executed.abort_reason.empty());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, session->Commit());
  EXPECT_FALSE(result.committed);
  EXPECT_FALSE(result.conflict);  // a real integrity abort, not stale reads
  EXPECT_EQ(f.manager->stats().integrity_aborts, 1u);
  EXPECT_TRUE(f.db.SameState(MakeFixtureState()))
      << "abort must leave the committed state unchanged";
}

TEST(TxnManagerTest, StaleIntegrityAbortIsAConflictNotAnAbort) {
  Fixture f;
  // The session decides "abort: no such brewery" against its snapshot,
  // but a concurrent commit creates the brewery first. The abort
  // decision is stale — the manager must report a retryable conflict,
  // and the retry (Run) must commit.
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult executed,
      session->ExecuteText(
          "insert(beer, {(\"norse\", \"ale\", \"newbrew\", 5.5)});"));
  EXPECT_FALSE(executed.committed);  // aborts on refint against snapshot
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult brewery,
      f.manager->RunText(
          "insert(brewery, {(\"newbrew\", \"oslo\", \"no\")});"));
  ASSERT_TRUE(brewery.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult stale, session->Commit());
  EXPECT_FALSE(stale.committed);
  EXPECT_TRUE(stale.conflict) << "stale abort must surface as a conflict";
  // A fresh Run now sees the brewery and commits.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult retry,
      f.manager->RunText(
          "insert(beer, {(\"norse\", \"ale\", \"newbrew\", 5.5)});"));
  EXPECT_TRUE(retry.committed);
}

TEST(TxnManagerTest, ReadOnlyCommitConsumesNoVersion) {
  Fixture f;
  const uint64_t before = f.manager->committed_version();
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK(
      session->ExecuteText("tmp := select[alcohol > 100](beer);").status());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, session->Commit());
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.installed);
  EXPECT_EQ(result.commit_version, before);
  EXPECT_EQ(f.manager->committed_version(), before);
  EXPECT_EQ(f.manager->stats().readonly_commits, 1u);
}

TEST(TxnManagerTest, ValidationWindowOverflowConflictsConservatively) {
  TxnManagerOptions options;
  options.validation_window = 1;
  Fixture f(options);
  auto old_session = f.manager->Begin();
  TXMOD_ASSERT_OK(
      old_session
          ->ExecuteText(
              "insert(beer, {(\"slow\", \"ale\", \"guinness\", 6.0)});")
          .status());
  // Two commits push the record the old session needs out of the window.
  for (const char* name : {"w1", "w2"}) {
    TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult r,
                               f.manager->RunText(InsertBeerText(name)));
    ASSERT_TRUE(r.committed);
  }
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, old_session->Commit());
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.conflict);
  EXPECT_NE(result.abort_reason.find("validation window"),
            std::string::npos);
}

TEST(TxnManagerTest, MultipleExecutesAccumulateOneAtomicSession) {
  Fixture f;
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK(
      session
          ->ExecuteText(
              "insert(brewery, {(\"carlsberg\", \"kbh\", \"dk\")});")
          .status());
  // The second Execute depends on the first's uncommitted write.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult second,
      session->ExecuteText(
          "insert(beer, {(\"hof\", \"pilsner\", \"carlsberg\", 4.5)});"));
  EXPECT_TRUE(second.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result, session->Commit());
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(HasBeer(f.db, "hof"));
  EXPECT_GE(result.statements_executed, 2u);
}

TEST(TxnManagerTest, RunMatchesSerialExecuteTransactionOutcomes) {
  // The same workload through (a) the manager and (b) the classic serial
  // subsystem path must produce identical outcomes and final states.
  Fixture f;
  Database serial_db = MakeFixtureState();
  core::IntegritySubsystem serial_ics(&serial_db);
  TXMOD_ASSERT_OK(
      serial_ics.DefineConstraint("domain", BeerDomainConstraint()));
  TXMOD_ASSERT_OK(
      serial_ics.DefineConstraint("refint", BeerRefIntConstraint()));

  const std::vector<std::string> workload = {
      "insert(beer, {(\"fresh\", \"ale\", \"guinness\", 6.0)});",
      "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});",
      "insert(beer, {(\"neg\", \"ale\", \"heineken\", -1.0)});",
      "delete(brewery, select[name = \"heineken\"](brewery));",
      "insert(brewery, {(\"plzen\", \"pilsen\", \"cz\")}); "
      "delete(brewery, select[name = \"plzen\"](brewery));",
      "tmp := select[alcohol > 7](beer); delete(beer, tmp);",
  };
  for (const std::string& text : workload) {
    TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult concurrent,
                               f.manager->RunText(text));
    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult serial,
                               serial_ics.ExecuteText(text));
    EXPECT_EQ(concurrent.committed, serial.committed) << text;
    EXPECT_EQ(f.db.SameState(serial_db), true) << text;
  }
}

TEST(TxnManagerTest, FinishedSessionsRejectFurtherUse) {
  Fixture f;
  auto session = f.manager->Begin();
  TXMOD_ASSERT_OK(
      session->ExecuteText("tmp := select[alcohol > 0](beer);").status());
  TXMOD_ASSERT_OK(session->Commit().status());
  EXPECT_TRUE(session->finished());
  EXPECT_EQ(session->ExecuteText("tmp := beer;").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->Commit().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TxnManagerTest, KeyFkWorkloadThroughManagerKeepsIntegrity) {
  // The bench schema end-to-end: dangling inserts abort, valid ones
  // commit, and the final state satisfies the constraints.
  Database db = bench::MakeKeyFkDatabase(20, 100);
  bench::AddUnreferencedKeys(&db, 5);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager, TxnManager::Create(&ics));

  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult valid, manager->Run(bench::MakeFkInsertBatch(10, 20)));
  EXPECT_TRUE(valid.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult dangling,
      manager->RunText(
          "insert(fk_rel, {(999999, \"zz\", 1.0)});"));
  EXPECT_FALSE(dangling.committed);
  EXPECT_FALSE(dangling.conflict);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult del, manager->Run(bench::MakeKeyDeleteBatch(3)));
  EXPECT_TRUE(del.committed);
}

// ---------------------------------------------------------------------------
// The rule-definition quiesce guard: DefineConstraint/DefineRule/DropRule
// through the manager must refuse while sessions are live (recompiling
// rule plans under executing sessions is a data race by contract) and
// work normally once the system is quiet.
// ---------------------------------------------------------------------------

TEST(TxnManagerQuiesceTest, RuleDefinitionRejectedWhileSessionLive) {
  Fixture f;
  EXPECT_EQ(f.manager->active_sessions(), 0u);
  auto session = f.manager->Begin();
  EXPECT_EQ(f.manager->active_sessions(), 1u);

  const Status define = f.manager->DefineConstraint(
      "late", "forall x (x in beer implies x.alcohol >= 1)");
  EXPECT_EQ(define.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(define.message().find("1 live session"), std::string::npos)
      << define.ToString();
  EXPECT_EQ(f.manager
                ->DefineRule("late_rule",
                             "WHEN INS(beer) IF NOT forall x (x in beer "
                             "implies x.alcohol >= 1) THEN abort")
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(f.manager->DropRule("domain").code(),
            StatusCode::kFailedPrecondition);
  // The rejected definitions changed nothing: the session still commits.
  ASSERT_TRUE(session->ExecuteText(InsertBeerText("ale1")).ok());
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult r, session->Commit());
  EXPECT_TRUE(r.committed);
}

TEST(TxnManagerQuiesceTest, RuleDefinitionAppliesAndEnforcesOnceQuiet) {
  Fixture f;
  {
    auto session = f.manager->Begin();
    ASSERT_TRUE(session->ExecuteText(InsertBeerText("ale1")).ok());
    ASSERT_TRUE(session->Commit().ok());
  }
  EXPECT_EQ(f.manager->active_sessions(), 0u);
  TXMOD_ASSERT_OK(f.manager->DefineConstraint(
      "strong", "forall x (x in beer implies x.alcohol <= 7)"));

  // The new constraint is live: a violating insert aborts.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult violating,
      f.manager->RunText(
          "insert(beer, {(\"rocket\", \"ale\", \"guinness\", 12.0)});"));
  EXPECT_FALSE(violating.committed);
  EXPECT_FALSE(HasBeer(*f.ics->database(), "rocket"));
  TXMOD_ASSERT_OK(f.manager->DropRule("strong"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult ok,
      f.manager->RunText(
          "insert(beer, {(\"rocket\", \"ale\", \"guinness\", 12.0)});"));
  EXPECT_TRUE(ok.committed);
}

TEST(TxnManagerQuiesceTest, EverySessionEndReleasesTheSlot) {
  Fixture f;
  // Commit, abort, and plain destruction must each release exactly once.
  auto committed = f.manager->Begin();
  auto aborted = f.manager->Begin();
  auto dropped = f.manager->Begin();
  EXPECT_EQ(f.manager->active_sessions(), 3u);

  ASSERT_TRUE(committed->ExecuteText(InsertBeerText("ale1")).ok());
  ASSERT_TRUE(committed->Commit().ok());
  EXPECT_EQ(f.manager->active_sessions(), 2u);
  committed.reset();  // destruction after Commit must not double-release
  EXPECT_EQ(f.manager->active_sessions(), 2u);

  aborted->Abort();
  aborted->Abort();  // idempotent
  EXPECT_EQ(f.manager->active_sessions(), 1u);

  dropped.reset();
  EXPECT_EQ(f.manager->active_sessions(), 0u);
  TXMOD_ASSERT_OK(f.manager->DropRule("domain"));
}

// ---------------------------------------------------------------------------
// Retry backoff and deadlines (deterministic: virtual clock, no wall
// sleeps — the injected Vfs advances time instantly).
// ---------------------------------------------------------------------------

TEST(TxnRetryTest, BackoffScheduleIsDeterministicAndBounded) {
  TxnManagerOptions options;
  options.retry_backoff_initial_micros = 1000;
  options.retry_backoff_max_micros = 8000;
  options.retry_jitter_seed = 42;

  EXPECT_EQ(TxnManager::ComputeBackoffMicros(options, 0, 1), 0)
      << "the first attempt never waits";
  int64_t expected_base = 1000;
  for (int attempt = 2; attempt <= 10; ++attempt) {
    const int64_t sleep =
        TxnManager::ComputeBackoffMicros(options, 7, attempt);
    EXPECT_GE(sleep, expected_base / 2) << "attempt " << attempt;
    EXPECT_LE(sleep, expected_base) << "attempt " << attempt;
    // Same (options, run_seq, attempt) -> the same sleep, every time.
    EXPECT_EQ(sleep, TxnManager::ComputeBackoffMicros(options, 7, attempt));
    expected_base = std::min<int64_t>(expected_base * 2, 8000);
  }
  // Different runs get different jitter (decorrelated herds), same seed
  // reproduces both.
  EXPECT_NE(TxnManager::ComputeBackoffMicros(options, 1, 4),
            TxnManager::ComputeBackoffMicros(options, 2, 4));

  TxnManagerOptions disabled;  // default: backoff off
  EXPECT_EQ(TxnManager::ComputeBackoffMicros(disabled, 0, 5), 0);
}

TEST(TxnRetryTest, RunBacksOffOnConflictsThroughTheInjectedClock) {
  FaultInjectingVfs vfs;
  TxnManagerOptions options;
  options.vfs = &vfs;
  options.retry_backoff_initial_micros = 1000;
  options.retry_backoff_max_micros = 8000;
  options.retry_jitter_seed = 7;
  Fixture f(options);

  // Force the first two attempts to lose validation: the probe commits
  // a brewery write under the running attempt, and the outer insert
  // reads brewery (referential check) — a read-write conflict.
  int breweries = 0;
  f.manager->set_run_probe([&](int attempt) {
    if (attempt > 2) return;
    auto saboteur = f.manager->Begin();
    TXMOD_ASSERT_OK(
        saboteur
            ->ExecuteText(StrCat("insert(brewery, {(\"pb", breweries++,
                                 "\", \"x\", \"nl\")});"))
            .status());
    TXMOD_ASSERT_OK(saboteur->Commit().status());
  });

  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result,
                             f.manager->RunText(InsertBeerText("retried")));
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 3u);

  // The exact backoff schedule, reproduced from the same seed. No wall
  // clock was involved: the virtual clock advanced instantly.
  const std::vector<int64_t> sleeps = vfs.sleep_log();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], TxnManager::ComputeBackoffMicros(options, 0, 2));
  EXPECT_EQ(sleeps[1], TxnManager::ComputeBackoffMicros(options, 0, 3));

  const TxnManagerStats stats = f.manager->stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.backoff_sleeps, 2u);
  EXPECT_EQ(stats.conflicts, 2u);
  EXPECT_EQ(stats.deadlines_exceeded, 0u);
}

TEST(TxnRetryTest, DeadlineStopsRetriesWithDeadlineExceeded) {
  FaultInjectingVfs vfs;
  TxnManagerOptions options;
  options.vfs = &vfs;
  options.max_attempts = 100;
  options.retry_backoff_initial_micros = 1000;
  options.retry_backoff_max_micros = 8000;
  // Budget below even one backoff sleep: the first conflict exhausts it.
  options.run_timeout_micros = 400;
  Fixture f(options);

  int breweries = 0;
  f.manager->set_run_probe([&](int) {
    auto saboteur = f.manager->Begin();
    TXMOD_ASSERT_OK(
        saboteur
            ->ExecuteText(StrCat("insert(brewery, {(\"pb", breweries++,
                                 "\", \"x\", \"nl\")});"))
            .status());
    TXMOD_ASSERT_OK(saboteur->Commit().status());
  });

  auto result = f.manager->RunText(InsertBeerText("never"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(vfs.sleep_log().empty())
      << "a sleep that would overrun the deadline must not happen";
  EXPECT_EQ(f.manager->stats().deadlines_exceeded, 1u);
  EXPECT_FALSE(HasBeer(f.db, "never"));
}

TEST(TxnRetryTest, DefaultRetriesAreImmediateAndUncounted) {
  FaultInjectingVfs vfs;
  TxnManagerOptions options;  // backoff disabled by default
  options.vfs = &vfs;
  Fixture f(options);

  int breweries = 0;
  f.manager->set_run_probe([&](int attempt) {
    if (attempt > 1) return;
    auto saboteur = f.manager->Begin();
    TXMOD_ASSERT_OK(
        saboteur
            ->ExecuteText(StrCat("insert(brewery, {(\"pb", breweries++,
                                 "\", \"x\", \"nl\")});"))
            .status());
    TXMOD_ASSERT_OK(saboteur->Commit().status());
  });
  TXMOD_ASSERT_OK_AND_ASSIGN(TxnResult result,
                             f.manager->RunText(InsertBeerText("hot")));
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_TRUE(vfs.sleep_log().empty()) << "no backoff by default";
  EXPECT_EQ(f.manager->stats().retries, 1u);
  EXPECT_EQ(f.manager->stats().backoff_sleeps, 0u);
}

}  // namespace
}  // namespace txmod::txn
