#ifndef TXMOD_TESTS_TEST_UTIL_H_
#define TXMOD_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/relational/database.h"

namespace txmod::testing {

/// Fails the current test when `status` is not OK.
#define TXMOD_ASSERT_OK(expr)                                  \
  do {                                                         \
    const ::txmod::Status _st = (expr);                        \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (false)

#define TXMOD_EXPECT_OK(expr)                                  \
  do {                                                         \
    const ::txmod::Status _st = (expr);                        \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (false)

/// Unwraps a Result<T>, failing the test on error. Usage:
///   TXMOD_ASSERT_OK_AND_ASSIGN(auto v, ComputeV());
#define TXMOD_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  TXMOD_ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      TXMOD_TEST_CONCAT_(_txmod_res, __LINE__), lhs, rexpr)
#define TXMOD_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)            \
  auto tmp = (rexpr);                                                \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                  \
  lhs = std::move(tmp).value()
#define TXMOD_TEST_CONCAT_(a, b) TXMOD_TEST_CONCAT_IMPL_(a, b)
#define TXMOD_TEST_CONCAT_IMPL_(a, b) a##b

/// The running example of the paper (Example 4.1): a beer database with
///   beer(name, type, brewery, alcohol)
///   brewery(name, city, country)
inline Database MakeBeerDatabase() {
  Database db;
  Status st = db.CreateRelation(RelationSchema(
      "beer", {Attribute{"name", AttrType::kString},
               Attribute{"type", AttrType::kString},
               Attribute{"brewery", AttrType::kString},
               Attribute{"alcohol", AttrType::kDouble}}));
  st = db.CreateRelation(RelationSchema(
      "brewery", {Attribute{"name", AttrType::kString},
                  Attribute{"city", AttrType::kString},
                  Attribute{"country", AttrType::kString}}));
  (void)st;
  return db;
}

/// Inserts a beer tuple directly (bypassing integrity control).
inline void AddBeer(Database* db, const std::string& name,
                    const std::string& type, const std::string& brewery,
                    double alcohol) {
  Relation* rel = *db->FindMutable("beer");
  rel->Insert(Tuple({Value::String(name), Value::String(type),
                     Value::String(brewery), Value::Double(alcohol)}));
}

inline void AddBrewery(Database* db, const std::string& name,
                       const std::string& city, const std::string& country) {
  Relation* rel = *db->FindMutable("brewery");
  rel->Insert(Tuple({Value::String(name), Value::String(city),
                     Value::String(country)}));
}

/// The paper's constraints over the beer database (Example 4.1): the
/// referential constraint ties every beer to an existing brewery; the
/// domain constraint bounds the alcohol percentage.
inline const char* BeerRefIntConstraint() {
  return "forall x (x in beer implies exists y (y in brewery and "
         "x.brewery = y.name))";
}

inline const char* BeerDomainConstraint() {
  return "forall x (x in beer implies x.alcohol >= 0 and x.alcohol <= 100)";
}

}  // namespace txmod::testing

#endif  // TXMOD_TESTS_TEST_UTIL_H_
