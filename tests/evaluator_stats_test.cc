// Pins the pipelined evaluator's work-counter semantics, operator by
// operator, so future perf work cannot silently change what an operator
// scans or emits. The contract (see evaluator.h): every operator adds the
// tuples it reads from its inputs to `tuples_scanned` — a materialized
// build side counts once, an indexed build side counts zero — and the
// tuples it yields to `tuples_emitted` *before* any downstream set-dedup.

#include <cstdint>
#include <map>

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/parser.h"
#include "src/algebra/physical_plan.h"
#include "tests/test_util.h"

namespace txmod::algebra {
namespace {

using txmod::testing::MakeBeerDatabase;

class DbContext : public EvalContext {
 public:
  explicit DbContext(const Database* db) : db_(db) {}
  Result<const Relation*> Resolve(RelRefKind kind,
                                  const std::string& name) const override {
    if (kind != RelRefKind::kBase) {
      return Status::FailedPrecondition(
          "auxiliary relations need a transaction context");
    }
    return db_->Find(name);
  }

 private:
  const Database* db_;
};

/// beer: pils/heineken/5.0, stout/guinness/4.2, free/heineken/0.0
/// brewery: heineken, guinness, plzen
class EvaluatorStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeBeerDatabase();
    testing::AddBeer(&db_, "pils", "lager", "heineken", 5.0);
    testing::AddBeer(&db_, "stout", "stout", "guinness", 4.2);
    testing::AddBeer(&db_, "free", "lager", "heineken", 0.0);
    testing::AddBrewery(&db_, "heineken", "amsterdam", "nl");
    testing::AddBrewery(&db_, "guinness", "dublin", "ie");
    testing::AddBrewery(&db_, "plzen", "pilsen", "cz");
  }

  Result<Relation> Eval(const RelExprPtr& e, EvalStats* stats) {
    DbContext ctx(&db_);
    return EvaluateRelExpr(*e, ctx, stats);
  }

  Result<Relation> EvalText(const std::string& text, EvalStats* stats) {
    AlgebraParser parser(&db_.schema());
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, parser.ParseExpression(text));
    return Eval(e, stats);
  }

  void ExpectStats(const std::string& text, std::size_t result_size,
                   uint64_t scanned, uint64_t emitted) {
    EvalStats stats;
    TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvalText(text, &stats));
    EXPECT_EQ(r.size(), result_size) << text;
    EXPECT_EQ(stats.tuples_scanned, scanned) << text;
    EXPECT_EQ(stats.tuples_emitted, emitted) << text;
  }

  Database db_;
};

TEST_F(EvaluatorStatsTest, RefScansNothing) {
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, Eval(RelExpr::Base("beer"), &stats));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(stats.tuples_scanned, 0u);
  EXPECT_EQ(stats.tuples_emitted, 0u);
  EXPECT_EQ(stats.operators, 1u);
}

TEST_F(EvaluatorStatsTest, Select) {
  ExpectStats("select[alcohol > 0](beer)", 2, 3, 2);
}

TEST_F(EvaluatorStatsTest, ProjectEmitsBeforeDedup) {
  // Three input tuples project to two distinct breweries: the operator
  // emits 3, the result set keeps 2.
  ExpectStats("project[brewery](beer)", 2, 3, 3);
}

TEST_F(EvaluatorStatsTest, Product) {
  // Right side (3) is materialized once; left streams 3; 9 rows emitted.
  ExpectStats("product(beer, brewery)", 9, 6, 9);
}

TEST_F(EvaluatorStatsTest, HashJoin) {
  // Build side brewery (3) + probe side beer (3); every beer matches.
  ExpectStats("join[l.brewery = r.name](beer, brewery)", 3, 6, 3);
}

TEST_F(EvaluatorStatsTest, SemiJoin) {
  ExpectStats("semijoin[l.brewery = r.name](beer, brewery)", 3, 6, 3);
}

TEST_F(EvaluatorStatsTest, AntiJoin) {
  ExpectStats("antijoin[l.brewery = r.name](beer, brewery)", 0, 6, 0);
}

TEST_F(EvaluatorStatsTest, NestedLoopJoinWithoutEquiConjunct) {
  // No equality conjunct: nested loops, same counting contract.
  ExpectStats("semijoin[r.alcohol < l.alcohol](beer, beer)", 2, 6, 2);
}

TEST_F(EvaluatorStatsTest, Union) {
  ExpectStats("union(beer, beer)", 3, 6, 6);
}

TEST_F(EvaluatorStatsTest, Difference) {
  ExpectStats("diff(beer, beer)", 0, 6, 0);
}

TEST_F(EvaluatorStatsTest, Intersect) {
  ExpectStats("intersect(beer, beer)", 3, 6, 3);
}

TEST_F(EvaluatorStatsTest, DifferenceAgainstEmptyPassesThrough) {
  // The empty right side is detected before any scan: the left stream is
  // passed through unfiltered and unscanned by the set operator itself.
  ExpectStats("diff(beer, select[alcohol < 0](beer))", 3, 3, 0);
}

TEST_F(EvaluatorStatsTest, ScalarAggregateStreamsUniqueInput) {
  ExpectStats("cnt(beer)", 1, 3, 1);
}

TEST_F(EvaluatorStatsTest, AggregateOverProjectionDeduplicatesFirst) {
  // project[brewery](beer) yields {heineken, guinness}: CNT must see the
  // deduplicated set (2), not the 3 emitted tuples.
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r,
                             EvalText("cnt(project[brewery](beer))", &stats));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.SortedTuples()[0].at(0), Value::Int(2));
  // The projection emits 3; the aggregate scans the 2 survivors.
  EXPECT_EQ(stats.tuples_scanned, 5u);
  EXPECT_EQ(stats.tuples_emitted, 4u);
}

TEST_F(EvaluatorStatsTest, GroupedAggregate) {
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r, Eval(RelExpr::GroupAggregate({2}, AggFunc::kCnt, -1,
                                               RelExpr::Base("beer")),
                       &stats));
  EXPECT_EQ(r.size(), 2u);  // heineken x2, guinness x1
  EXPECT_EQ(stats.tuples_scanned, 3u);
  EXPECT_EQ(stats.tuples_emitted, 2u);
}

TEST_F(EvaluatorStatsTest, Literal) {
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r,
      Eval(RelExpr::Literal({Tuple({Value::Int(1)}), Tuple({Value::Int(1)}),
                             Tuple({Value::Int(2)})},
                            1),
           &stats));
  EXPECT_EQ(r.size(), 2u);  // literals deduplicate (relations are sets)
  EXPECT_EQ(stats.tuples_scanned, 0u);
  EXPECT_EQ(stats.tuples_emitted, 2u);
}

TEST_F(EvaluatorStatsTest, ShortLiteralTupleIsAnErrorNotAnOutOfBoundsRead) {
  // Regression: the schema-inference loop used to read attribute i of
  // every literal tuple before validating per-tuple arity, an OOB read on
  // a short tuple (caught under ASan).
  EvalStats stats;
  auto result = Eval(
      RelExpr::Literal({Tuple({Value::Int(1), Value::Int(2)}),
                        Tuple({Value::Int(3)})},  // arity 1, expected 2
                       2),
      &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorStatsTest, AntiJoinAgainstEmptyRightIsFree) {
  // The differential fast path: an antijoin whose build side is empty
  // passes the left side through without scanning or filtering it.
  EvalStats stats;
  auto pred = ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 2),
                                 ScalarExpr::Attr(1, 0));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r, Eval(RelExpr::AntiJoin(pred, RelExpr::Base("beer"),
                                         RelExpr::Literal({}, 3)),
                       &stats));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(stats.tuples_scanned, 0u);
}

// ---------------------------------------------------------------------------
// Indexed build sides: declared relation indexes change the scan counts
// (that is the point) but never the results.
// ---------------------------------------------------------------------------

TEST_F(EvaluatorStatsTest, IndexedSemiJoinScansOnlyTheProbeSide) {
  EvalStats before;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation expected,
      EvalText("semijoin[l.brewery = r.name](beer, brewery)", &before));
  ASSERT_NE((*db_.FindMutable("brewery"))->IndexOn({0}), nullptr);
  EvalStats after;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation indexed,
      EvalText("semijoin[l.brewery = r.name](beer, brewery)", &after));
  EXPECT_TRUE(indexed.SameTuples(expected));
  EXPECT_EQ(before.tuples_scanned, 6u);  // build 3 + probe 3
  EXPECT_EQ(after.tuples_scanned, 3u);   // probe only
}

TEST_F(EvaluatorStatsTest, IndexedDifferenceSkipsTheProjection) {
  const char* text = "diff(project[brewery](beer), project[name](brewery))";
  EvalStats before;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation expected, EvalText(text, &before));
  ASSERT_NE((*db_.FindMutable("brewery"))->IndexOn({0}), nullptr);
  EvalStats after;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation indexed, EvalText(text, &after));
  EXPECT_TRUE(indexed.SameTuples(expected));
  EXPECT_EQ(expected.size(), 0u);  // every beer's brewery exists
  // Unindexed: left projection (3 in/3 out) + right projection (3 in/3
  // out) + the difference's build (3) and probe (3). Indexed: the right
  // projection is never evaluated.
  EXPECT_EQ(before.tuples_scanned, 12u);
  EXPECT_EQ(after.tuples_scanned, 6u);
}

TEST_F(EvaluatorStatsTest, IndexedIntersectMatchesUnindexed) {
  const char* text =
      "intersect(project[brewery](beer), project[name](brewery))";
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation expected, EvalText(text, nullptr));
  ASSERT_NE((*db_.FindMutable("brewery"))->IndexOn({0}), nullptr);
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation indexed, EvalText(text, nullptr));
  EXPECT_TRUE(indexed.SameTuples(expected));
  EXPECT_EQ(indexed.size(), 2u);  // heineken, guinness
}

// ---------------------------------------------------------------------------
// Exact numeric join keys: int64 values above 2^53 must not be conflated
// by the double widening the key normalization used to apply.
// ---------------------------------------------------------------------------

TEST_F(EvaluatorStatsTest, JoinKeysAbove2Pow53StayExact) {
  const int64_t big = int64_t{1} << 53;
  Database db;
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("l_rel", {Attribute{"v", AttrType::kInt}})));
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("r_rel", {Attribute{"v", AttrType::kInt}})));
  (*db.FindMutable("l_rel"))->Insert(Tuple({Value::Int(big)}));
  (*db.FindMutable("l_rel"))->Insert(Tuple({Value::Int(big + 1)}));
  (*db.FindMutable("r_rel"))->Insert(Tuple({Value::Int(big + 1)}));
  AlgebraParser parser(&db.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e, parser.ParseExpression("join[l.v = r.v](l_rel, r_rel)"));
  DbContext ctx(&db);
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvaluateRelExpr(*e, ctx));
  // big and big + 1 widen to the same double; exact comparison keeps them
  // apart, so only the true partner joins.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.SortedTuples()[0].at(0), Value::Int(big + 1));
}

// ---------------------------------------------------------------------------
// Plan-cache counters: the exact hit/miss/eviction accounting of
// PlanCache::GetOrCompileShaped, and their EvalStats plumbing. Pinned
// here next to the other counter contracts so future cache work cannot
// silently change what a lookup reports.
// ---------------------------------------------------------------------------

TEST_F(EvaluatorStatsTest, ShapedLookupCountsMissesThenHits) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e1, parser.ParseExpression("select[alcohol >= 4](beer)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e2, parser.ParseExpression("select[alcohol >= 5](beer)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e3, parser.ParseExpression("select[name = \"x\"](beer)"));

  PlanCache cache;
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan b1,
                             cache.GetOrCompileShaped(*e1, &stats));
  EXPECT_FALSE(b1.cache_hit);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);

  // A literal-only rewrite of the same shape hits, under its own binding.
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan b2,
                             cache.GetOrCompileShaped(*e2, &stats));
  EXPECT_TRUE(b2.cache_hit);
  EXPECT_EQ(b2.plan, b1.plan);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  ASSERT_EQ(b2.params.size(), 1u);
  EXPECT_EQ(b2.params[0], Value::Int(5));

  // A structurally different statement misses.
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan b3,
                             cache.GetOrCompileShaped(*e3, &stats));
  EXPECT_FALSE(b3.cache_hit);
  EXPECT_EQ(stats.plan_cache_misses, 2u);
  EXPECT_EQ(cache.shape_size(), 2u);
  EXPECT_EQ(cache.shape_hits(), 1u);
  EXPECT_EQ(cache.shape_misses(), 2u);
  EXPECT_EQ(cache.shape_evictions(), 0u);
}

TEST_F(EvaluatorStatsTest, ShapedCacheEvictsLeastRecentlyUsed) {
  AlgebraParser parser(&db_.schema());
  auto parse = [&](const std::string& text) {
    auto e = parser.ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return *e;
  };
  RelExprPtr a = parse("select[alcohol >= 1](beer)");
  RelExprPtr b = parse("select[name = \"x\"](beer)");
  RelExprPtr c = parse("select[type != \"y\"](beer)");

  PlanCache cache;
  cache.set_shape_capacity(2);
  EvalStats stats;
  TXMOD_ASSERT_OK(cache.GetOrCompileShaped(*a, &stats).status());
  TXMOD_ASSERT_OK(cache.GetOrCompileShaped(*b, &stats).status());
  // Touch `a` so `b` is the least recently used...
  TXMOD_ASSERT_OK(cache.GetOrCompileShaped(*a, &stats).status());
  // ...then a third shape evicts `b`, not `a`.
  TXMOD_ASSERT_OK(cache.GetOrCompileShaped(*c, &stats).status());
  EXPECT_EQ(stats.plan_cache_evictions, 1u);
  EXPECT_EQ(cache.shape_size(), 2u);
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan again_a,
                             cache.GetOrCompileShaped(*a, &stats));
  EXPECT_TRUE(again_a.cache_hit);
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan again_b,
                             cache.GetOrCompileShaped(*b, &stats));
  EXPECT_FALSE(again_b.cache_hit);  // was evicted
}

TEST_F(EvaluatorStatsTest, CapacityZeroRetainsNothingButStaysExecutable) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e, parser.ParseExpression("select[alcohol >= 4](beer)"));
  PlanCache cache;
  cache.set_shape_capacity(0);
  EvalStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(BoundPlan bound,
                             cache.GetOrCompileShaped(*e, &stats));
  EXPECT_FALSE(bound.cache_hit);
  EXPECT_NE(bound.owned, nullptr);  // caller-owned, not cache-resident
  EXPECT_EQ(cache.shape_size(), 0u);
  DbContext ctx(&db_);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r, bound.plan->Execute(ctx, &stats, &bound.params));
  EXPECT_EQ(r.size(), 2u);  // pils 5.0, stout 4.2
}

TEST_F(EvaluatorStatsTest, CacheCountersAggregateAndStripCleanly) {
  EvalStats a;
  a.tuples_scanned = 3;
  a.plan_cache_hits = 2;
  a.plan_cache_misses = 1;
  a.plan_cache_evictions = 4;
  EvalStats b;
  b.plan_cache_hits = 5;
  b.index_probes = 7;
  a.Add(b);
  EXPECT_EQ(a.plan_cache_hits, 7u);
  EXPECT_EQ(a.plan_cache_misses, 1u);
  EXPECT_EQ(a.plan_cache_evictions, 4u);
  const EvalStats stripped = a.WithoutCacheCounters();
  EXPECT_EQ(stripped.plan_cache_hits, 0u);
  EXPECT_EQ(stripped.plan_cache_misses, 0u);
  EXPECT_EQ(stripped.plan_cache_evictions, 0u);
  EXPECT_EQ(stripped.tuples_scanned, 3u);
  EXPECT_EQ(stripped.index_probes, 7u);
}

}  // namespace
}  // namespace txmod::algebra
