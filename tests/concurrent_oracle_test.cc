// Concurrency oracle: randomized transaction mixes run through the
// TxnManager from 1..8 client threads must produce a final state equal
// to the SERIAL execution of the committed transactions in commit-version
// order (the manager's serialization order) — the linearizability-style
// check for first-committer-wins validation over snapshots. Runs with a
// live WAL so group commit is exercised under the same concurrency, and
// verifies the recovered state matches too. The thread counts can be
// extended via TXMOD_ORACLE_THREADS (the CI stress job sets it high).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/relational/wal.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

using algebra::Transaction;

constexpr int kKeys = 30;
constexpr int kSharedKeys = 12;  // unreferenced, contended by deletes
constexpr int kTxnsPerThread = 25;

Database MakeInitialDatabase() {
  Database db = bench::MakeKeyFkDatabase(kKeys, 120);
  bench::AddUnreferencedKeys(&db, kSharedKeys);
  return db;
}

void DefineConstraints(core::IntegritySubsystem* ics) {
  TXMOD_ASSERT_OK(
      ics->DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(
      ics->DefineConstraint("refint", bench::RefIntConstraint()));
}

/// One pre-generated transaction: deterministic, so the serial replay
/// re-executes exactly what the concurrent run executed.
struct WorkItem {
  Transaction txn;
  std::string trace;
};

/// A mix of valid inserts (thread-disjoint ids), violating inserts
/// (domain + referential), contended key deletes/re-inserts (the
/// conflict knob), and fk deletes.
std::vector<WorkItem> MakeThreadWorkload(int thread_id, unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<unsigned>(n));
  };
  std::vector<WorkItem> items;
  int next_id = 1'000'000 + thread_id * 100'000;
  for (int i = 0; i < kTxnsPerThread; ++i) {
    Transaction txn;
    std::string trace;
    switch (pick(6)) {
      case 0:
      case 1: {  // valid fk insert batch (ids disjoint across threads)
        std::vector<Tuple> tuples;
        const int batch = 1 + pick(4);
        for (int b = 0; b < batch; ++b) {
          tuples.push_back(Tuple({Value::Int(next_id++),
                                  Value::String(StrCat("k", pick(kKeys))),
                                  Value::Double(1.0 + pick(9))}));
        }
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
        trace = "valid fk insert";
        break;
      }
      case 2: {  // dangling ref: integrity abort
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel",
            algebra::RelExpr::Literal(
                {Tuple({Value::Int(next_id++),
                        Value::String(StrCat("zz", pick(50))),
                        Value::Double(3.0)})},
                3)));
        trace = "dangling fk insert";
        break;
      }
      case 3: {  // contended: delete a shared unreferenced key
        txn.program.statements.push_back(algebra::Statement::Delete(
            "key_rel",
            algebra::RelExpr::Literal(
                {Tuple({Value::String(StrCat("x", pick(kSharedKeys))),
                        Value::String("payload")})},
                2)));
        trace = "shared key delete";
        break;
      }
      case 4: {  // contended: (re-)insert a shared unreferenced key
        txn.program.statements.push_back(algebra::Statement::Insert(
            "key_rel",
            algebra::RelExpr::Literal(
                {Tuple({Value::String(StrCat("x", pick(kSharedKeys))),
                        Value::String("payload")})},
                2)));
        trace = "shared key insert";
        break;
      }
      default: {  // negative amount: domain abort
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel",
            algebra::RelExpr::Literal(
                {Tuple({Value::Int(next_id++),
                        Value::String(StrCat("k", pick(kKeys))),
                        Value::Double(-1.0)})},
                3)));
        trace = "negative amount insert";
        break;
      }
    }
    items.push_back(WorkItem{std::move(txn), std::move(trace)});
  }
  return items;
}

struct CommittedTxn {
  uint64_t commit_version = 0;
  bool installed = false;
  int thread_id = 0;
  int txn_index = 0;
};

/// Thread counts under test: 1, 2, 4, 8, plus TXMOD_ORACLE_THREADS when
/// set (the CI stress job runs high counts in Release).
std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 4, 8};
  if (const char* env = std::getenv("TXMOD_ORACLE_THREADS")) {
    const int extra = std::atoi(env);
    if (extra > 0 &&
        std::find(counts.begin(), counts.end(), extra) == counts.end()) {
      counts.push_back(extra);
    }
  }
  return counts;
}

class ConcurrentOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentOracleTest, FinalStateMatchesSerialReplayInCommitOrder) {
  const int num_threads = GetParam();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      StrCat("txmod_oracle_", ::getpid(), "_", num_threads);
  std::filesystem::create_directories(dir);
  TxnManagerOptions options;
  options.wal_path = (dir / "wal.log").string();
  options.checkpoint_path = (dir / "checkpoint.db").string();

  Database db = MakeInitialDatabase();
  Database initial = db.Clone();
  core::IntegritySubsystem ics(&db);
  DefineConstraints(&ics);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options));

  // Pre-generate every thread's workload so the serial replay can
  // re-execute the exact same transactions.
  std::vector<std::vector<WorkItem>> workloads;
  for (int t = 0; t < num_threads; ++t) {
    workloads.push_back(MakeThreadWorkload(
        t, 7919u * static_cast<unsigned>(t + 1) +
               static_cast<unsigned>(num_threads)));
  }

  std::vector<std::vector<CommittedTxn>> committed_per_thread(
      static_cast<std::size_t>(num_threads));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto result = manager->Run(workloads[static_cast<std::size_t>(t)]
                                       [static_cast<std::size_t>(i)]
                                           .txn);
        if (!result.ok()) {
          ++failures;
          return;
        }
        if (result->committed) {
          committed_per_thread[static_cast<std::size_t>(t)].push_back(
              CommittedTxn{result->commit_version, result->installed, t, i});
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0) << "a Run() returned an error status";

  // Serialize: commit-version order, write-ful commits before the
  // read-only commits that observed the same version.
  std::vector<CommittedTxn> order;
  for (const auto& per_thread : committed_per_thread) {
    order.insert(order.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(order.begin(), order.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              if (a.commit_version != b.commit_version) {
                return a.commit_version < b.commit_version;
              }
              return a.installed && !b.installed;
            });

  // Serial replay through a fresh subsystem: every committed transaction
  // must also commit serially, and the final states must agree exactly.
  Database replay_db = initial.Clone();
  core::IntegritySubsystem replay_ics(&replay_db);
  DefineConstraints(&replay_ics);
  for (const CommittedTxn& c : order) {
    TXMOD_ASSERT_OK_AND_ASSIGN(
        TxnResult replayed,
        replay_ics.Execute(
            workloads[static_cast<std::size_t>(c.thread_id)]
                     [static_cast<std::size_t>(c.txn_index)]
                         .txn));
    ASSERT_TRUE(replayed.committed)
        << "transaction committed concurrently at version "
        << c.commit_version << " but aborts in serial replay: "
        << replayed.abort_reason << " ("
        << workloads[static_cast<std::size_t>(c.thread_id)]
                    [static_cast<std::size_t>(c.txn_index)]
                        .trace
        << ")";
  }
  EXPECT_TRUE(db.SameState(replay_db))
      << "concurrent final state differs from serial replay in commit "
       "order";

  // The sanity arithmetic: installed commits advanced the version.
  const uint64_t installed = static_cast<uint64_t>(std::count_if(
      order.begin(), order.end(),
      [](const CommittedTxn& c) { return c.installed; }));
  EXPECT_EQ(manager->committed_version(),
            initial.logical_time() + installed);

  // Durability under the same concurrency: the recovered state equals
  // the live committed state (everything was fsync'd by group commit).
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options));
  EXPECT_TRUE(recovered.SameState(db))
      << "checkpoint+WAL recovery diverges from the live state";
  EXPECT_EQ(recovered.logical_time(), db.logical_time());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ConcurrentOracleTest,
                         ::testing::ValuesIn(ThreadCounts()),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return StrCat(param.param, "threads");
                         });

// ---------------------------------------------------------------------------
// High-contention, multi-relation oracle: 16 threads over 8 relations
// with a mix of thread-disjoint and deliberately overlapping footprints,
// committing through a 4-way sharded WAL (multi-relation transactions
// fan out across shards). The final state must still equal the serial
// replay of the committed transactions in commit-version order, and
// stitched recovery must reproduce it exactly.
// ---------------------------------------------------------------------------

constexpr int kOracleRelations = 8;
constexpr int kHighContentionThreads = 16;
constexpr int kSharedIds = 6;  // tiny shared id range => real conflicts

std::string OracleRelName(int r) { return StrCat("acct", r); }

Database MakeMultiRelationDatabase() {
  Database db;
  for (int r = 0; r < kOracleRelations; ++r) {
    TXMOD_BENCH_CHECK_OK(db.CreateRelation(RelationSchema(
        OracleRelName(r), {Attribute{"id", AttrType::kInt},
                           Attribute{"tag", AttrType::kString}})));
    Relation* rel = *db.FindMutable(OracleRelName(r));
    for (int i = 0; i < kSharedIds; ++i) {
      rel->Insert(Tuple({Value::Int(i), Value::String("seed")}));
    }
  }
  return db;
}

/// One statement per touched relation. Footprints mix three shapes:
/// thread-private inserts (never conflict), shared-id deletes and
/// re-inserts (tuple-granularity write-write conflicts), and
/// multi-relation transactions whose statements span 2-3 relations —
/// the sharded WAL's fan-out case.
std::vector<WorkItem> MakeMultiRelationWorkload(int thread_id,
                                                unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<unsigned>(n));
  };
  auto insert_stmt = [](int r, Tuple t) {
    return algebra::Statement::Insert(
        OracleRelName(r), algebra::RelExpr::Literal({std::move(t)}, 2));
  };
  auto delete_stmt = [](int r, Tuple t) {
    return algebra::Statement::Delete(
        OracleRelName(r), algebra::RelExpr::Literal({std::move(t)}, 2));
  };
  std::vector<WorkItem> items;
  int next_id = 1'000'000 + thread_id * 100'000;
  for (int i = 0; i < kTxnsPerThread; ++i) {
    Transaction txn;
    std::string trace;
    switch (pick(4)) {
      case 0: {  // disjoint: private ids into this thread's home relation
        const int r = thread_id % kOracleRelations;
        txn.program.statements.push_back(insert_stmt(
            r, Tuple({Value::Int(next_id++), Value::String("mine")})));
        trace = "private insert";
        break;
      }
      case 1: {  // overlapping: toggle a shared id in a random relation
        const int r = pick(kOracleRelations);
        Tuple shared({Value::Int(pick(kSharedIds)), Value::String("seed")});
        if (pick(2) == 0) {
          txn.program.statements.push_back(delete_stmt(r, shared));
          trace = "shared delete";
        } else {
          txn.program.statements.push_back(insert_stmt(r, std::move(shared)));
          trace = "shared insert";
        }
        break;
      }
      case 2: {  // multi-relation fan-out, disjoint ids (2-3 relations)
        const int span = 2 + pick(2);
        for (int s = 0; s < span; ++s) {
          txn.program.statements.push_back(insert_stmt(
              (thread_id + s) % kOracleRelations,
              Tuple({Value::Int(next_id++), Value::String("fanout")})));
        }
        trace = "multi-relation insert";
        break;
      }
      default: {  // multi-relation with one contended statement
        const int r = pick(kOracleRelations);
        txn.program.statements.push_back(insert_stmt(
            (r + 1) % kOracleRelations,
            Tuple({Value::Int(next_id++), Value::String("mixed")})));
        txn.program.statements.push_back(delete_stmt(
            r, Tuple({Value::Int(pick(kSharedIds)), Value::String("seed")})));
        trace = "mixed fan-out";
        break;
      }
    }
    items.push_back(WorkItem{std::move(txn), std::move(trace)});
  }
  return items;
}

TEST(HighContentionMultiRelationTest,
     SixteenThreadsOverShardedWalMatchSerialReplay) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      StrCat("txmod_oracle_multirel_", ::getpid());
  std::filesystem::create_directories(dir);
  TxnManagerOptions options;
  options.wal_path = (dir / "wal.log").string();
  options.checkpoint_path = (dir / "checkpoint.db").string();
  options.wal_shards = 4;

  Database db = MakeMultiRelationDatabase();
  Database initial = db.Clone();
  core::IntegritySubsystem ics(&db);  // no constraints: conflicts, not aborts
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options));
  ASSERT_TRUE(manager->wal()->sharded());
  ASSERT_EQ(manager->wal()->shard_count(), 4u);

  std::vector<std::vector<WorkItem>> workloads;
  for (int t = 0; t < kHighContentionThreads; ++t) {
    workloads.push_back(
        MakeMultiRelationWorkload(t, 104'729u * static_cast<unsigned>(t + 1)));
  }

  std::vector<std::vector<CommittedTxn>> committed_per_thread(
      kHighContentionThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kHighContentionThreads);
  for (int t = 0; t < kHighContentionThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto result = manager->Run(workloads[static_cast<std::size_t>(t)]
                                       [static_cast<std::size_t>(i)]
                                           .txn);
        if (!result.ok()) {
          ++failures;
          return;
        }
        if (result->committed) {
          committed_per_thread[static_cast<std::size_t>(t)].push_back(
              CommittedTxn{result->commit_version, result->installed, t, i});
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0) << "a Run() returned an error status";

  std::vector<CommittedTxn> order;
  for (const auto& per_thread : committed_per_thread) {
    order.insert(order.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(order.begin(), order.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              if (a.commit_version != b.commit_version) {
                return a.commit_version < b.commit_version;
              }
              return a.installed && !b.installed;
            });

  Database replay_db = initial.Clone();
  core::IntegritySubsystem replay_ics(&replay_db);
  for (const CommittedTxn& c : order) {
    TXMOD_ASSERT_OK_AND_ASSIGN(
        TxnResult replayed,
        replay_ics.Execute(
            workloads[static_cast<std::size_t>(c.thread_id)]
                     [static_cast<std::size_t>(c.txn_index)]
                         .txn));
    ASSERT_TRUE(replayed.committed)
        << "transaction committed concurrently at version "
        << c.commit_version << " but aborts in serial replay ("
        << workloads[static_cast<std::size_t>(c.thread_id)]
                    [static_cast<std::size_t>(c.txn_index)]
                        .trace
        << ")";
  }
  EXPECT_TRUE(db.SameState(replay_db))
      << "concurrent final state differs from serial replay in commit "
       "order";

  const uint64_t installed = static_cast<uint64_t>(std::count_if(
      order.begin(), order.end(),
      [](const CommittedTxn& c) { return c.installed; }));
  EXPECT_EQ(manager->committed_version(),
            initial.logical_time() + installed);

  // Stitched sharded recovery reproduces the live state exactly.
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options));
  EXPECT_TRUE(recovered.SameState(db))
      << "sharded checkpoint+WAL recovery diverges from the live state";
  EXPECT_EQ(recovered.logical_time(), db.logical_time());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace txmod::txn
