// Edge cases across modules: triggering-graph reporting, degenerate
// translations, evaluator error paths, and printer coverage.

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/common/str_util.h"
#include "src/calculus/parser.h"
#include "src/core/subsystem.h"
#include "src/core/translate.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

namespace core = txmod::core;
using testing::MakeBeerDatabase;

// --- triggering graph reporting ----------------------------------------------

TEST(TriggeringGraphTest, DescribeCyclesNamesTheRules) {
  Database db = MakeBeerDatabase();
  core::SubsystemOptions options;
  options.reject_cyclic_rule_sets = false;  // let the cycle in, to inspect
  core::IntegritySubsystem ics(&db, options);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "ping",
      "WHEN INS(beer) IF NOT cnt(brewery) >= 0 "
      "THEN insert(brewery, {(\"x\", \"y\", \"z\")})"));
  TXMOD_ASSERT_OK(ics.DefineRule(
      "pong",
      "WHEN INS(brewery) IF NOT cnt(beer) >= 0 "
      "THEN insert(beer, {(\"x\", \"y\", \"z\", 1.0)})"));
  EXPECT_TRUE(ics.graph().HasCycle());
  const std::string report = ics.graph().DescribeCycles();
  EXPECT_NE(report.find("ping"), std::string::npos);
  EXPECT_NE(report.find("pong"), std::string::npos);
  EXPECT_NE(report.find("NONTRIGGERING"), std::string::npos);
}

TEST(TriggeringGraphTest, TwoIndependentCyclesBothReported) {
  Database db = MakeBeerDatabase();
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("r3", {Attribute{"a", AttrType::kInt}})));
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("r4", {Attribute{"a", AttrType::kInt}})));
  core::SubsystemOptions options;
  options.reject_cyclic_rule_sets = false;
  core::IntegritySubsystem ics(&db, options);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "self1",
      "WHEN INS(r3) IF NOT cnt(r3) >= 0 THEN insert(r3, {(1)})"));
  TXMOD_ASSERT_OK(ics.DefineRule(
      "self2",
      "WHEN INS(r4) IF NOT cnt(r4) >= 0 THEN insert(r4, {(1)})"));
  const auto cycles = ics.graph().FindCycles();
  EXPECT_EQ(cycles.size(), 2u);
}

TEST(TriggeringGraphTest, AcyclicGraphReportsNothing) {
  Database db = MakeBeerDatabase();
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "c", "forall x (x in beer implies x.alcohol >= 0)"));
  EXPECT_EQ(ics.graph().DescribeCycles(), "");
  EXPECT_FALSE(ics.graph().HasCycle());
}

// --- degenerate translations -------------------------------------------------

class DegenerateTranslateTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  Result<Relation> EvalViolation(const std::string& constraint) {
    TXMOD_ASSIGN_OR_RETURN(calculus::Formula f,
                           calculus::ParseFormula(constraint));
    TXMOD_ASSIGN_OR_RETURN(calculus::AnalyzedFormula analyzed,
                           calculus::AnalyzeFormula(f, db_.schema()));
    TXMOD_ASSIGN_OR_RETURN(algebra::RelExprPtr q,
                           core::ViolationQuery(analyzed, db_.schema()));
    txn::TxnContext ctx(&db_);
    return algebra::EvaluateRelExpr(*q, ctx);
  }
};

TEST_F(DegenerateTranslateTest, ConstantTrueConstraintNeverViolated) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v, EvalViolation("1 = 1"));
  EXPECT_TRUE(v.empty());
}

TEST_F(DegenerateTranslateTest, ConstantFalseConstraintAlwaysViolated) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v, EvalViolation("1 = 0"));
  EXPECT_FALSE(v.empty());
}

TEST_F(DegenerateTranslateTest, VacuousUniversalHolds) {
  // beer is empty: any universal over it holds.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation v,
      EvalViolation("forall x (x in beer implies x.alcohol >= 99)"));
  EXPECT_TRUE(v.empty());
}

TEST_F(DegenerateTranslateTest, EmptyExistentialFails) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation v,
      EvalViolation("exists x (x in beer and x.alcohol >= 0)"));
  EXPECT_FALSE(v.empty());
}

TEST_F(DegenerateTranslateTest, DeltaConditionsOutsideTransaction) {
  // A condition over dplus/dminus outside any transaction sees empty
  // differentials: nothing is violated.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation v,
      EvalViolation("forall s (s in dplus(beer) implies 1 = 0)"));
  EXPECT_TRUE(v.empty());
}

// --- evaluator error paths ----------------------------------------------------

TEST(EvaluatorErrorTest, AggregateAttributeOutOfRange) {
  Database db = MakeBeerDatabase();
  txn::TxnContext ctx(&db);
  auto expr = algebra::RelExpr::Aggregate(algebra::AggFunc::kSum, 17,
                                          algebra::RelExpr::Base("beer"));
  EXPECT_FALSE(algebra::EvaluateRelExpr(*expr, ctx).ok());
}

TEST(EvaluatorErrorTest, SumOverStringsFails) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "pils", "lager", "x", 5.0);
  txn::TxnContext ctx(&db);
  auto expr = algebra::RelExpr::Aggregate(algebra::AggFunc::kSum, 0,
                                          algebra::RelExpr::Base("beer"));
  EXPECT_FALSE(algebra::EvaluateRelExpr(*expr, ctx).ok());
}

TEST(EvaluatorErrorTest, MinMaxOverStringsWork) {
  Database db = MakeBeerDatabase();
  testing::AddBeer(&db, "a", "lager", "x", 5.0);
  testing::AddBeer(&db, "z", "lager", "x", 5.0);
  txn::TxnContext ctx(&db);
  auto mn = algebra::RelExpr::Aggregate(algebra::AggFunc::kMin, 0,
                                        algebra::RelExpr::Base("beer"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v, algebra::EvaluateRelExpr(*mn, ctx));
  EXPECT_EQ(v.SortedTuples()[0].at(0), Value::String("a"));
}

TEST(EvaluatorErrorTest, GroupedAggregateRespectsNulls) {
  Database db;
  TXMOD_ASSERT_OK(db.CreateRelation(RelationSchema(
      "t", {Attribute{"g", AttrType::kString},
            Attribute{"v", AttrType::kInt}})));
  Relation* rel = *db.FindMutable("t");
  rel->Insert(Tuple({Value::String("a"), Value::Int(1)}));
  rel->Insert(Tuple({Value::String("a"), Value::Null()}));
  rel->Insert(Tuple({Value::String("b"), Value::Null()}));
  txn::TxnContext ctx(&db);
  // AVG skips nulls; a group with only nulls yields null.
  auto avg = algebra::RelExpr::GroupAggregate({0}, algebra::AggFunc::kAvg, 1,
                                              algebra::RelExpr::Base("t"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v,
                             algebra::EvaluateRelExpr(*avg, ctx));
  ASSERT_EQ(v.size(), 2u);
  for (const Tuple& t : v) {
    if (t.at(0) == Value::String("a")) {
      EXPECT_EQ(t.at(1), Value::Double(1.0));
    } else {
      EXPECT_TRUE(t.at(1).is_null());
    }
  }
}

// --- printers ------------------------------------------------------------------

TEST(PrinterCoverageTest, CalculusFormulaPrintingAllConnectives) {
  const std::string texts[] = {
      "not (cnt(beer) > 0) and (cnt(beer) > 1 or cnt(beer) > 2)",
      "cnt(beer) > 0 implies cnt(beer) > 1",
      "forall x (x in beer implies not (x.alcohol < 0 or x.alcohol > 90))",
      "min(beer, name) != \"\" and max(beer, alcohol) <= 90",
      "avg(beer, alcohol) * 2 + 1 <= 20 - 1",
  };
  for (const std::string& text : texts) {
    auto f1 = calculus::ParseFormula(text);
    ASSERT_TRUE(f1.ok()) << text;
    auto f2 = calculus::ParseFormula(f1->ToString());
    ASSERT_TRUE(f2.ok()) << f1->ToString();
    EXPECT_TRUE(f1->Equals(*f2)) << text << " vs " << f1->ToString();
  }
}

TEST(PrinterCoverageTest, CollectRelRefsFindsEverything) {
  auto f = calculus::ParseFormula(
      "forall x (x in beer implies exists y (y in old(brewery) and "
      "x.brewery = y.name)) and sum(beer, alcohol) < cnt(dplus(beer))");
  ASSERT_TRUE(f.ok());
  std::vector<calculus::CalcRelRef> refs;
  f->CollectRelRefs(&refs);
  ASSERT_EQ(refs.size(), 4u);
}

TEST(PrinterCoverageTest, RelationToStringElidesLongContents) {
  Database db = MakeBeerDatabase();
  for (int i = 0; i < 20; ++i) {
    testing::AddBeer(&db, StrCat("b", i), "t", "x", 1.0);
  }
  const std::string s = (*db.Find("beer"))->ToString(4);
  EXPECT_NE(s.find("... (16 more)"), std::string::npos);
}

}  // namespace
}  // namespace txmod
