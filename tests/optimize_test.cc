#include "gtest/gtest.h"
#include "src/calculus/parser.h"
#include "src/core/optimize.h"
#include "src/rules/trigger_gen.h"
#include "tests/test_util.h"

namespace txmod::core {
namespace {

using calculus::Formula;
using rules::Trigger;
using rules::TriggerSet;
using rules::UpdateType;
using txmod::testing::MakeBeerDatabase;

class OptimizeTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  calculus::AnalyzedFormula Analyze(const std::string& text) {
    auto f = calculus::ParseFormula(text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    auto a = calculus::AnalyzeFormula(*f, db_.schema());
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    return *a;
  }

  OptimizedCondition Optimize(const std::string& text) {
    calculus::AnalyzedFormula a = Analyze(text);
    const TriggerSet triggers = rules::GenTrigC(a.formula);
    return OptC(a, triggers, OptimizationLevel::kDifferential);
  }
};

TEST_F(OptimizeTest, LevelNoneKeepsConditionVerbatim) {
  calculus::AnalyzedFormula a =
      Analyze("forall x (x in beer implies x.alcohol >= 0)");
  OptimizedCondition c =
      OptC(a, rules::GenTrigC(a.formula), OptimizationLevel::kNone);
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_FALSE(c.differential);
  EXPECT_TRUE(c.parts[0].Equals(a.formula));
}

TEST_F(OptimizeTest, DomainConstraintChecksDeltaPlusOnly) {
  OptimizedCondition c =
      Optimize("forall x (x in beer implies x.alcohol >= 0)");
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_TRUE(c.differential);
  EXPECT_EQ(c.parts[0].ToString(),
            "forall x (x in dplus(beer) implies x.alcohol >= 0)");
}

TEST_F(OptimizeTest, DomainWithExtraAntecedentConjuncts) {
  OptimizedCondition c = Optimize(
      "forall x (x in beer and x.type = \"lager\" implies x.alcohol <= 6)");
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_TRUE(c.differential);
  EXPECT_EQ(
      c.parts[0].ToString(),
      "forall x (x in dplus(beer) and x.type = \"lager\" implies "
      "x.alcohol <= 6)");
}

TEST_F(OptimizeTest, ReferentialConstraintGetsTwoParts) {
  OptimizedCondition c = Optimize(
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))");
  ASSERT_EQ(c.parts.size(), 2u);
  EXPECT_TRUE(c.differential);
  // Part 1 (INS(beer)): only newly inserted referencing tuples.
  EXPECT_EQ(c.parts[0].ToString(),
            "forall x (x in dplus(beer) implies exists y (y in brewery and "
            "x.brewery = y.name))");
  // Part 2 (DEL(brewery)): only tuples whose witnesses may have vanished.
  EXPECT_EQ(c.parts[1].ToString(),
            "forall x (x in beer and exists y__deleted (y__deleted in "
            "dminus(brewery) and x.brewery = y__deleted.name) implies "
            "exists y (y in brewery and x.brewery = y.name))");
}

TEST_F(OptimizeTest, PairConstraintGetsTwoParts) {
  OptimizedCondition c = Optimize(
      "forall x, y (x in beer and y in brewery implies x.name != y.name)");
  ASSERT_EQ(c.parts.size(), 2u);
  EXPECT_TRUE(c.differential);
  EXPECT_EQ(c.parts[0].ToString(),
            "forall x (forall y (x in dplus(beer) and y in brewery implies "
            "x.name != y.name))");
  EXPECT_EQ(c.parts[1].ToString(),
            "forall x (forall y (x in beer and y in dplus(brewery) implies "
            "x.name != y.name))");
}

TEST_F(OptimizeTest, SelfPairConstraint) {
  // Key constraint: same name means same tuple.
  OptimizedCondition c = Optimize(
      "forall x, y (x in beer and y in beer implies "
      "x.name != y.name or x = y)");
  ASSERT_EQ(c.parts.size(), 2u);
  EXPECT_TRUE(c.differential);
}

TEST_F(OptimizeTest, AggregateConstraintFallsBackToFullCheck) {
  OptimizedCondition c = Optimize("sum(beer, alcohol) <= 100");
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_FALSE(c.differential);
}

TEST_F(OptimizeTest, AggregateInsideUniversalFallsBack) {
  OptimizedCondition c = Optimize(
      "forall x (x in beer implies x.alcohol <= avg(beer, alcohol) + 2)");
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_FALSE(c.differential);
}

TEST_F(OptimizeTest, TransitionConstraintFallsBack) {
  OptimizedCondition c = Optimize(
      "forall x (x in old(brewery) implies exists y (y in brewery and "
      "x = y))");
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_FALSE(c.differential);
}

TEST_F(OptimizeTest, ExplicitTriggerSubsetsLimitTheParts) {
  // Designer chose to enforce only on INS(beer) — the DEL(brewery) part
  // must not be generated.
  calculus::AnalyzedFormula a = Analyze(
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))");
  OptimizedCondition c = OptC(a, TriggerSet{Trigger{UpdateType::kIns, "beer"}},
                              OptimizationLevel::kDifferential);
  ASSERT_EQ(c.parts.size(), 1u);
  EXPECT_TRUE(c.differential);
  EXPECT_EQ(c.parts[0].ToString(),
            "forall x (x in dplus(beer) implies exists y (y in brewery and "
            "x.brewery = y.name))");
}

TEST_F(OptimizeTest, UnrelatedExtraTriggerForcesFullPart) {
  // A designer trigger the optimizer cannot attribute to the pattern
  // (INS(brewery) cannot violate referential integrity, but DEL(beer) on a
  // *different* relation pattern can never be classified) keeps a full
  // check so no enforcement gap opens.
  calculus::AnalyzedFormula a =
      Analyze("forall x (x in beer implies x.alcohol >= 0)");
  TriggerSet ts{Trigger{UpdateType::kIns, "beer"},
                Trigger{UpdateType::kIns, "brewery"}};
  OptimizedCondition c = OptC(a, ts, OptimizationLevel::kDifferential);
  ASSERT_EQ(c.parts.size(), 2u);
  EXPECT_TRUE(c.parts[1].Equals(a.formula));
}

TEST_F(OptimizeTest, OptRKeepsTriggersAndAction) {
  // Algorithm 5.4: OptR(J) = (triggers(J), OptC(condition(J)), action(J)).
  calculus::AnalyzedFormula a =
      Analyze("forall x (x in beer implies x.alcohol >= 0)");
  rules::IntegrityRule rule;
  rule.name = "r";
  rule.condition = a;
  rule.triggers = rules::GenTrigC(a.formula);
  rule.action_kind = rules::ActionKind::kAbort;
  OptimizedRule opt = OptR(rule, OptimizationLevel::kDifferential);
  EXPECT_EQ(opt.rule, &rule);
  EXPECT_TRUE(opt.condition.differential);
}

}  // namespace
}  // namespace txmod::core
