#include <map>

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/parser.h"
#include "src/algebra/statement.h"
#include "tests/test_util.h"

namespace txmod::algebra {
namespace {

using txmod::testing::MakeBeerDatabase;

/// Minimal evaluation context over a Database (no transaction state):
/// resolves base relations only.
class DbContext : public EvalContext {
 public:
  explicit DbContext(const Database* db) : db_(db) {}
  Result<const Relation*> Resolve(RelRefKind kind,
                                  const std::string& name) const override {
    if (kind != RelRefKind::kBase) {
      return Status::FailedPrecondition(
          "auxiliary relations need a transaction context");
    }
    return db_->Find(name);
  }

 private:
  const Database* db_;
};

class AlgebraEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeBeerDatabase();
    testing::AddBeer(&db_, "pils", "lager", "heineken", 5.0);
    testing::AddBeer(&db_, "stout", "stout", "guinness", 4.2);
    testing::AddBeer(&db_, "free", "lager", "heineken", 0.0);
    testing::AddBrewery(&db_, "heineken", "amsterdam", "nl");
    testing::AddBrewery(&db_, "guinness", "dublin", "ie");
    testing::AddBrewery(&db_, "plzen", "pilsen", "cz");
  }

  Result<Relation> Eval(const RelExprPtr& e) {
    DbContext ctx(&db_);
    return EvaluateRelExpr(*e, ctx);
  }

  Result<Relation> EvalText(const std::string& text) {
    AlgebraParser parser(&db_.schema());
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, parser.ParseExpression(text));
    return Eval(e);
  }

  Database db_;
};

TEST_F(AlgebraEvalTest, BaseRef) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, Eval(RelExpr::Base("beer")));
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(AlgebraEvalTest, SelectByPredicate) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r,
                             EvalText("select[alcohol > 4.5](beer)"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.SortedTuples()[0].at(0), Value::String("pils"));
}

TEST_F(AlgebraEvalTest, SelectWithConjunction) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r,
      EvalText("select[type = \"lager\" and alcohol > 0](beer)"));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(AlgebraEvalTest, ProjectDeduplicates) {
  // Set semantics: projecting 3 beers onto brewery yields 2 values.
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvalText("project[brewery](beer)"));
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(AlgebraEvalTest, ProjectComputedAndNull) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r, EvalText("project[name, alcohol * 2, null](beer)"));
  EXPECT_EQ(r.size(), 3u);
  for (const Tuple& t : r) {
    EXPECT_TRUE(t.at(2).is_null());
  }
}

TEST_F(AlgebraEvalTest, JoinOnEquality) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r,
      EvalText("join[brewery = l.name](brewery, beer)"));
  // Each beer matches its brewery: 3 pairs; arity 3 + 4.
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.arity(), 7u);
}

TEST_F(AlgebraEvalTest, JoinAmbiguousAttributeFails) {
  // "name" exists on both sides; an unqualified reference must error.
  AlgebraParser parser(&db_.schema());
  EXPECT_FALSE(parser.ParseExpression("join[name = name](beer, brewery)")
                   .ok());
}

TEST_F(AlgebraEvalTest, SemiAndAntiJoin) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation with, EvalText("semijoin[l.brewery = r.name](beer, brewery)"));
  EXPECT_EQ(with.size(), 3u);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation without,
      EvalText("antijoin[l.name = r.brewery](brewery, beer)"));
  // plzen brews nothing.
  EXPECT_EQ(without.size(), 1u);
  EXPECT_EQ(without.SortedTuples()[0].at(0), Value::String("plzen"));
}

TEST_F(AlgebraEvalTest, NonEquiJoinFallsBackToNestedLoop) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation r, EvalText("join[l.alcohol > r.alcohol](beer, beer)"));
  // Pairs with strictly greater alcohol: (pils,stout),(pils,free),
  // (stout,free).
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(AlgebraEvalTest, SetOperations) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation diff,
      EvalText("project[brewery](beer) - project[name](brewery)"));
  EXPECT_EQ(diff.size(), 0u);  // all breweries known
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation diff2,
      EvalText("project[name](brewery) - project[brewery](beer)"));
  EXPECT_EQ(diff2.size(), 1u);  // plzen
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation isect,
      EvalText("project[name](brewery) intersect project[brewery](beer)"));
  EXPECT_EQ(isect.size(), 2u);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation uni,
      EvalText("project[name](brewery) union project[brewery](beer)"));
  EXPECT_EQ(uni.size(), 3u);
}

TEST_F(AlgebraEvalTest, SetOperationArityMismatchFails) {
  AlgebraParser parser(&db_.schema());
  EXPECT_FALSE(parser.ParseExpression("beer union brewery").ok());
}

TEST_F(AlgebraEvalTest, Aggregates) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation cnt, EvalText("cnt(beer)"));
  ASSERT_EQ(cnt.size(), 1u);
  EXPECT_EQ(cnt.SortedTuples()[0].at(0), Value::Int(3));

  TXMOD_ASSERT_OK_AND_ASSIGN(Relation sum, EvalText("sum[alcohol](beer)"));
  EXPECT_DOUBLE_EQ(sum.SortedTuples()[0].at(0).as_double(), 9.2);

  TXMOD_ASSERT_OK_AND_ASSIGN(Relation mx, EvalText("max[alcohol](beer)"));
  EXPECT_DOUBLE_EQ(mx.SortedTuples()[0].at(0).as_double(), 5.0);

  TXMOD_ASSERT_OK_AND_ASSIGN(Relation avg, EvalText("avg[alcohol](beer)"));
  EXPECT_NEAR(avg.SortedTuples()[0].at(0).as_double(), 9.2 / 3, 1e-9);
}

TEST_F(AlgebraEvalTest, AggregatesOverEmptyInput) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation cnt, EvalText("cnt(select[alcohol > 99](beer))"));
  EXPECT_EQ(cnt.SortedTuples()[0].at(0), Value::Int(0));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation sum, EvalText("sum[alcohol](select[alcohol > 99](beer))"));
  EXPECT_EQ(sum.SortedTuples()[0].at(0), Value::Int(0));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation mn, EvalText("min[alcohol](select[alcohol > 99](beer))"));
  EXPECT_TRUE(mn.SortedTuples()[0].at(0).is_null());
}

TEST_F(AlgebraEvalTest, GroupedAggregate) {
  // Extension: count beers per brewery.
  auto expr = RelExpr::GroupAggregate({2}, AggFunc::kCnt, -1,
                                      RelExpr::Base("beer"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, Eval(expr));
  EXPECT_EQ(r.size(), 2u);
  for (const Tuple& t : r) {
    if (t.at(0) == Value::String("heineken")) {
      EXPECT_EQ(t.at(1), Value::Int(2));
    } else {
      EXPECT_EQ(t.at(1), Value::Int(1));
    }
  }
}

TEST_F(AlgebraEvalTest, LiteralRelation) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r,
                             EvalText("{(1, \"a\"), (2, \"b\")}"));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.arity(), 2u);
}

TEST_F(AlgebraEvalTest, ProductIsCross) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvalText("product(beer, brewery)"));
  EXPECT_EQ(r.size(), 9u);
}

TEST_F(AlgebraEvalTest, HashJoinMatchesIntAgainstDouble) {
  // The hash key normalization must agree with predicate coercion.
  Database db;
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("ints", {Attribute{"v", AttrType::kInt}})));
  TXMOD_ASSERT_OK(db.CreateRelation(
      RelationSchema("dbls", {Attribute{"v", AttrType::kDouble}})));
  (*db.FindMutable("ints"))->Insert(Tuple({Value::Int(1)}));
  (*db.FindMutable("dbls"))->Insert(Tuple({Value::Double(1.0)}));
  AlgebraParser parser(&db.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e, parser.ParseExpression("join[l.v = r.v](ints, dbls)"));
  DbContext ctx(&db);
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvaluateRelExpr(*e, ctx));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(AlgebraEvalTest, StatsAreCounted) {
  DbContext ctx(&db_);
  EvalStats stats;
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e, parser.ParseExpression("select[alcohol > 0](beer)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r, EvaluateRelExpr(*e, ctx, &stats));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(stats.tuples_scanned, 3u);
  EXPECT_EQ(stats.tuples_emitted, 2u);
  EXPECT_GE(stats.operators, 2u);
}

TEST(ScalarExprTest, NullSemantics) {
  // Comparisons involving null are false (except = on two nulls).
  Tuple t({Value::Null(), Value::Int(5)});
  auto lt = ScalarExpr::Binary(ScalarOp::kLt, ScalarExpr::Attr(0, 0),
                               ScalarExpr::Attr(0, 1));
  TXMOD_ASSERT_OK_AND_ASSIGN(bool lt_v, lt.EvalPredicate(&t, nullptr));
  EXPECT_FALSE(lt_v);
  auto ge = ScalarExpr::Binary(ScalarOp::kGe, ScalarExpr::Attr(0, 0),
                               ScalarExpr::Attr(0, 1));
  TXMOD_ASSERT_OK_AND_ASSIGN(bool ge_v, ge.EvalPredicate(&t, nullptr));
  EXPECT_FALSE(ge_v);
  // not(a < b) is TRUE here — distinct from a >= b. The translator relies
  // on this (see ToNnf documentation).
  auto not_lt = ScalarExpr::Not(lt);
  TXMOD_ASSERT_OK_AND_ASSIGN(bool not_lt_v, not_lt.EvalPredicate(&t, nullptr));
  EXPECT_TRUE(not_lt_v);
  // Equality on two nulls is true.
  auto eq = ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 0),
                               ScalarExpr::Const(Value::Null()));
  TXMOD_ASSERT_OK_AND_ASSIGN(bool eq_v, eq.EvalPredicate(&t, nullptr));
  EXPECT_TRUE(eq_v);
}

TEST(ScalarExprTest, ArithmeticNullPropagationAndDivZero) {
  Tuple t({Value::Null(), Value::Int(5)});
  auto add = ScalarExpr::Binary(ScalarOp::kAdd, ScalarExpr::Attr(0, 0),
                                ScalarExpr::Attr(0, 1));
  TXMOD_ASSERT_OK_AND_ASSIGN(Value v, add.EvalValue(&t, nullptr));
  EXPECT_TRUE(v.is_null());
  auto div = ScalarExpr::Binary(ScalarOp::kDiv, ScalarExpr::Attr(0, 1),
                                ScalarExpr::Const(Value::Int(0)));
  EXPECT_FALSE(div.EvalValue(&t, nullptr).ok());
}

TEST(ScalarExprTest, IntArithmeticStaysIntegral) {
  Tuple t({Value::Int(7), Value::Int(2)});
  auto mul = ScalarExpr::Binary(ScalarOp::kMul, ScalarExpr::Attr(0, 0),
                                ScalarExpr::Attr(0, 1));
  TXMOD_ASSERT_OK_AND_ASSIGN(Value v, mul.EvalValue(&t, nullptr));
  EXPECT_EQ(v, Value::Int(14));
}

TEST(ScalarExprTest, PrinterPrecedence) {
  auto e = ScalarExpr::Binary(
      ScalarOp::kAnd,
      ScalarExpr::Binary(ScalarOp::kGe, ScalarExpr::Attr(0, 0, "a"),
                         ScalarExpr::Const(Value::Int(0))),
      ScalarExpr::Not(ScalarExpr::Binary(ScalarOp::kEq,
                                         ScalarExpr::Attr(0, 1, "b"),
                                         ScalarExpr::Const(Value::Int(1)))));
  EXPECT_EQ(e.ToString(), "a >= 0 and not b = 1");
  auto sum = ScalarExpr::Binary(
      ScalarOp::kMul,
      ScalarExpr::Binary(ScalarOp::kAdd, ScalarExpr::Attr(0, 0, "a"),
                         ScalarExpr::Const(Value::Int(1))),
      ScalarExpr::Const(Value::Int(2)));
  EXPECT_EQ(sum.ToString(), "(a + 1) * 2");
}

TEST(ProgramTest, ConcatKeepsOrderAndFlags) {
  Program a;
  a.statements.push_back(Statement::Abort("first"));
  a.non_triggering = true;
  Program b;
  b.statements.push_back(Statement::Abort("second"));
  b.non_triggering = false;
  Program c = Program::Concat(a, b);
  ASSERT_EQ(c.statements.size(), 2u);
  EXPECT_EQ(c.statements[0].message, "first");
  EXPECT_FALSE(c.non_triggering);  // only non-triggering if both are
}

TEST(ProgramTest, TransactionToString) {
  Transaction txn;
  txn.program.statements.push_back(
      Statement::Insert("beer", RelExpr::Literal({Tuple({Value::Int(1)})}, 1)));
  EXPECT_EQ(txn.ToString(), "begin\n  insert(beer, {(1)});\nend\n");
}

}  // namespace
}  // namespace txmod::algebra
