// Overlay-vs-clone oracle: overlay execution (a session's first write
// layers an O(1) overlay over the shared snapshot) is a pure cost
// optimization — it must be observationally IDENTICAL to the legacy
// O(|R|) copy-on-write clone path. Two pins:
//
//  1. a deterministic randomized session script (interleaved sessions,
//     conflicts, integrity aborts, multi-execute sessions, explicit
//     aborts) driven step-for-step against two managers that differ
//     only in TxnManagerOptions::overlay_sessions — every Execute and
//     Commit outcome, every commit version, and the final state must
//     agree exactly;
//
//  2. a multi-threaded workload with a scheduling-independent final
//     state (disjoint inserts plus per-thread contended keys, retried
//     through Run) executed once per mode — both modes must converge to
//     the same state and version, with commit compaction and shared
//     overlay levels exercised under real concurrency (this test runs
//     in the TSan CI job).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

using algebra::Transaction;

constexpr int kKeys = 20;
constexpr int kSharedKeys = 8;

Database MakeInitialDatabase() {
  Database db = bench::MakeKeyFkDatabase(kKeys, 200);
  bench::AddUnreferencedKeys(&db, 32);
  return db;
}

void DefineConstraints(core::IntegritySubsystem* ics) {
  TXMOD_ASSERT_OK(ics->DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics->DefineConstraint("refint", bench::RefIntConstraint()));
}

// ---------------------------------------------------------------------------
// Pin 1: deterministic session script, replayed against both modes.
// ---------------------------------------------------------------------------

struct ScriptStep {
  enum class Kind { kBegin, kExecute, kCommit, kAbort } kind;
  int slot = 0;       // which of the open-session slots
  Transaction txn;    // kExecute only
  std::string trace;  // for failure messages
};

/// A randomized but fully pre-generated script over `slots` concurrently
/// open sessions: the interleaving (and thus which commits conflict) is
/// part of the script, so both modes see the exact same history.
std::vector<ScriptStep> MakeScript(unsigned seed, int steps, int slots) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<unsigned>(n));
  };
  int next_id = 2'000'000;
  std::vector<ScriptStep> script;
  for (int i = 0; i < steps; ++i) {
    ScriptStep step;
    step.slot = pick(slots);
    switch (pick(8)) {
      case 0:
        step.kind = ScriptStep::Kind::kBegin;
        step.trace = "begin";
        break;
      case 1:
        step.kind = ScriptStep::Kind::kCommit;
        step.trace = "commit";
        break;
      case 2:
        step.kind = ScriptStep::Kind::kAbort;
        step.trace = "abort";
        break;
      default: {
        step.kind = ScriptStep::Kind::kExecute;
        switch (pick(5)) {
          case 0:
          case 1: {  // valid fk insert
            step.txn.program.statements.push_back(algebra::Statement::Insert(
                "fk_rel",
                algebra::RelExpr::Literal(
                    {Tuple({Value::Int(next_id++),
                            Value::String(StrCat("k", pick(kKeys))),
                            Value::Double(1.0 + pick(9))})},
                    3)));
            step.trace = "valid fk insert";
            break;
          }
          case 2: {  // contended shared-key delete
            step.txn.program.statements.push_back(algebra::Statement::Delete(
                "key_rel",
                algebra::RelExpr::Literal(
                    {Tuple({Value::String(StrCat("x", pick(kSharedKeys))),
                            Value::String("payload")})},
                    2)));
            step.trace = "shared key delete";
            break;
          }
          case 3: {  // contended shared-key (re-)insert
            step.txn.program.statements.push_back(algebra::Statement::Insert(
                "key_rel",
                algebra::RelExpr::Literal(
                    {Tuple({Value::String(StrCat("x", pick(kSharedKeys))),
                            Value::String("payload")})},
                    2)));
            step.trace = "shared key insert";
            break;
          }
          default: {  // dangling ref: integrity abort
            step.txn.program.statements.push_back(algebra::Statement::Insert(
                "fk_rel",
                algebra::RelExpr::Literal(
                    {Tuple({Value::Int(next_id++),
                            Value::String(StrCat("zz", pick(50))),
                            Value::Double(3.0)})},
                    3)));
            step.trace = "dangling fk insert";
            break;
          }
        }
        break;
      }
    }
    script.push_back(std::move(step));
  }
  return script;
}

/// One mode's full run: applies the script and records every observable
/// outcome in order.
struct ModeRun {
  Database db;
  std::unique_ptr<core::IntegritySubsystem> ics;
  std::unique_ptr<TxnManager> manager;
  std::vector<std::string> outcomes;

  explicit ModeRun(bool overlay) {
    db = MakeInitialDatabase();
    ics = std::make_unique<core::IntegritySubsystem>(&db);
    DefineConstraints(ics.get());
    TxnManagerOptions options;
    options.overlay_sessions = overlay;
    auto created = TxnManager::Create(ics.get(), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    manager = std::move(*created);
  }

  void Apply(const std::vector<ScriptStep>& script, int slots) {
    std::vector<std::unique_ptr<TxnSession>> sessions(
        static_cast<std::size_t>(slots));
    for (const ScriptStep& step : script) {
      auto& session = sessions[static_cast<std::size_t>(step.slot)];
      switch (step.kind) {
        case ScriptStep::Kind::kBegin:
          // (Re-)opening a slot drops any session already in it — the
          // destructor release path is part of what the oracle covers.
          session = manager->Begin();
          outcomes.push_back("begin");
          break;
        case ScriptStep::Kind::kExecute: {
          if (session == nullptr || session->finished()) {
            outcomes.push_back("execute:no-session");
            break;
          }
          auto r = session->Execute(step.txn);
          // Errors (e.g. executing on an integrity-aborted session) are
          // outcomes too: both modes must produce the same ones.
          outcomes.push_back(
              r.ok() ? StrCat("execute:", step.trace, ":",
                              r->committed ? "clean" : "aborted")
                     : StrCat("execute:", step.trace, ":",
                              r.status().ToString()));
          break;
        }
        case ScriptStep::Kind::kCommit: {
          if (session == nullptr || session->finished()) {
            outcomes.push_back("commit:no-session");
            break;
          }
          auto r = session->Commit();
          outcomes.push_back(
              r.ok() ? StrCat("commit:", r->committed ? "committed" : "lost",
                              ":", r->conflict ? "conflict" : "-",
                              ":installed=", r->installed ? "1" : "0",
                              ":v=", r->commit_version)
                     : StrCat("commit:", r.status().ToString()));
          break;
        }
        case ScriptStep::Kind::kAbort:
          if (session != nullptr) session->Abort();
          outcomes.push_back("abort");
          break;
      }
    }
  }
};

TEST(OverlayOracleTest, SessionScriptIsModeInvariant) {
  constexpr int kSlots = 3;
  for (unsigned seed : {11u, 29u, 47u, 83u}) {
    const std::vector<ScriptStep> script = MakeScript(seed, 400, kSlots);
    ModeRun overlay(/*overlay=*/true);
    ModeRun clone(/*overlay=*/false);
    overlay.Apply(script, kSlots);
    clone.Apply(script, kSlots);

    ASSERT_EQ(overlay.outcomes.size(), clone.outcomes.size());
    for (std::size_t i = 0; i < overlay.outcomes.size(); ++i) {
      ASSERT_EQ(overlay.outcomes[i], clone.outcomes[i])
          << "seed " << seed << ", step " << i << " ("
          << script[i].trace << ") diverges between overlay and clone";
    }
    EXPECT_EQ(overlay.manager->committed_version(),
              clone.manager->committed_version())
        << "seed " << seed;
    EXPECT_TRUE(overlay.db.SameState(clone.db))
        << "seed " << seed << ": final states diverge";
    EXPECT_EQ(overlay.manager->stats().commits,
              clone.manager->stats().commits);
    EXPECT_EQ(overlay.manager->stats().conflicts,
              clone.manager->stats().conflicts);
  }
}

// ---------------------------------------------------------------------------
// Pin 2: threaded convergence, once per mode (TSan coverage of shared
// overlay levels and commit compaction).
// ---------------------------------------------------------------------------

int OracleThreads() {
  if (const char* env = std::getenv("TXMOD_ORACLE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return std::min(n, 32);
  }
  return 4;
}

/// Runs the deterministic-final-state workload in one mode. Each thread
/// interleaves disjoint fk inserts with delete / re-insert rounds of its
/// OWN key (real write-write and read-write contention, but a
/// scheduling-independent net effect once Run's retries drain).
Database RunThreadedWorkload(bool overlay, int num_threads,
                             uint64_t* final_version) {
  Database db = MakeInitialDatabase();
  core::IntegritySubsystem ics(&db);
  DefineConstraints(&ics);
  TxnManagerOptions options;
  options.overlay_sessions = overlay;
  options.max_attempts = 64;  // retries must drain under full contention
  auto created = TxnManager::Create(&ics, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  auto manager = std::move(*created);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t]() {
      int next_id = 3'000'000 + t * 100'000;
      for (int round = 0; round < 20; ++round) {
        std::vector<Transaction> txns;
        {  // disjoint valid insert
          Transaction txn;
          txn.program.statements.push_back(algebra::Statement::Insert(
              "fk_rel",
              algebra::RelExpr::Literal(
                  {Tuple({Value::Int(next_id++),
                          Value::String(StrCat("k", round % kKeys)),
                          Value::Double(2.0)})},
                  3)));
          txns.push_back(std::move(txn));
        }
        {  // contended: delete own key (round even), re-insert (odd)
          Transaction txn;
          auto literal = algebra::RelExpr::Literal(
              {Tuple({Value::String(StrCat("x", t)),
                      Value::String("payload")})},
              2);
          txn.program.statements.push_back(
              round % 2 == 0
                  ? algebra::Statement::Delete("key_rel", std::move(literal))
                  : algebra::Statement::Insert("key_rel",
                                               std::move(literal)));
          txns.push_back(std::move(txn));
        }
        for (Transaction& txn : txns) {
          auto result = manager->Run(txn);
          if (!result.ok() || !result->committed) ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0)
      << "a transaction failed to commit despite retries";
  *final_version = manager->committed_version();
  return db.Clone();
}

TEST(OverlayOracleTest, ThreadedWorkloadConvergesIdenticallyPerMode) {
  const int num_threads = OracleThreads();
  uint64_t overlay_version = 0, clone_version = 0;
  Database overlay_db =
      RunThreadedWorkload(/*overlay=*/true, num_threads, &overlay_version);
  Database clone_db =
      RunThreadedWorkload(/*overlay=*/false, num_threads, &clone_version);
  EXPECT_TRUE(overlay_db.SameState(clone_db))
      << "overlay and clone modes converge to different states";
  EXPECT_EQ(overlay_version, clone_version);
}

}  // namespace
}  // namespace txmod::txn
