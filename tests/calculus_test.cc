#include "gtest/gtest.h"
#include "src/calculus/analyzer.h"
#include "src/calculus/parser.h"
#include "src/calculus/transform.h"
#include "tests/test_util.h"

namespace txmod::calculus {
namespace {

using txmod::testing::MakeBeerDatabase;

// --- parsing ---------------------------------------------------------------

TEST(CLParserTest, DomainConstraintOfExample41) {
  // I1: (∀x)(x ∈ beer ⇒ x.alcohol ≥ 0)
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x (x in beer implies x.alcohol >= 0)"));
  EXPECT_EQ(f.kind, Formula::Kind::kForall);
  EXPECT_EQ(f.var, "x");
  const Formula& imp = f.children[0];
  ASSERT_EQ(imp.kind, Formula::Kind::kImplies);
  EXPECT_EQ(imp.children[0].kind, Formula::Kind::kMembership);
  EXPECT_EQ(imp.children[1].kind, Formula::Kind::kCompare);
  EXPECT_EQ(imp.children[1].cmp, CompareOp::kGe);
}

TEST(CLParserTest, ReferentialConstraintOfExample41) {
  // I2: (∀x)(x ∈ beer ⇒ (∃y)(y ∈ brewery ∧ x.brewery = y.name))
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x (x in beer implies exists y (y in brewery and "
                   "x.brewery = y.name))"));
  const Formula& ex = f.children[0].children[1];
  ASSERT_EQ(ex.kind, Formula::Kind::kExists);
  EXPECT_EQ(ex.var, "y");
  ASSERT_EQ(ex.children[0].kind, Formula::Kind::kAnd);
}

TEST(CLParserTest, RoundTripThroughToString) {
  const std::string texts[] = {
      "forall x (x in beer implies x.alcohol >= 0)",
      "forall x (x in beer implies exists y (y in brewery and x.brewery = "
      "y.name))",
      "cnt(beer) <= 1000",
      "forall x (x in beer implies not (x.type = \"water\"))",
      "exists x (x in brewery and x.country = \"nl\")",
      "sum(beer, alcohol) < 100 or cnt(beer) = 0",
  };
  for (const std::string& text : texts) {
    TXMOD_ASSERT_OK_AND_ASSIGN(Formula f, ParseFormula(text));
    TXMOD_ASSERT_OK_AND_ASSIGN(Formula f2, ParseFormula(f.ToString()));
    EXPECT_TRUE(f.Equals(f2)) << text << " vs " << f.ToString();
  }
}

TEST(CLParserTest, MultiVariableQuantifierDesugars) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f, ParseFormula("forall x, y (x in beer and y in beer implies "
                              "x.name != y.name or x = y)"));
  EXPECT_EQ(f.kind, Formula::Kind::kForall);
  EXPECT_EQ(f.var, "x");
  EXPECT_EQ(f.children[0].kind, Formula::Kind::kForall);
  EXPECT_EQ(f.children[0].var, "y");
}

TEST(CLParserTest, TupleEqualityVsAttributeComparison) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x, y (x in beer and y in beer implies x = y)"));
  const Formula* inner = &f;
  while (inner->kind == Formula::Kind::kForall) inner = &inner->children[0];
  EXPECT_EQ(inner->children[1].kind, Formula::Kind::kTupleEq);
}

TEST(CLParserTest, ImpliesIsRightAssociative) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f, ParseFormula("cnt(beer) > 0 implies cnt(beer) > 1 implies "
                              "cnt(beer) > 2"));
  ASSERT_EQ(f.kind, Formula::Kind::kImplies);
  EXPECT_EQ(f.children[1].kind, Formula::Kind::kImplies);
}

TEST(CLParserTest, ArrowSynonymForImplies) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula a, ParseFormula("forall x (x in beer => x.alcohol >= 0)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula b, ParseFormula("forall x (x in beer implies x.alcohol >= 0)"));
  EXPECT_TRUE(a.Equals(b));
}

TEST(CLParserTest, OldRelationReference) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x (x in beer implies exists y (y in old(beer) "
                   "and x.name = y.name))"));
  const Formula& mem =
      f.children[0].children[1].children[0].children[0];
  EXPECT_EQ(mem.rel.kind, CalcRelKind::kOld);
}

TEST(CLParserTest, AggregateTerms) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Formula f,
                             ParseFormula("sum(beer, alcohol) <= 100.5"));
  ASSERT_EQ(f.kind, Formula::Kind::kCompare);
  EXPECT_EQ(f.terms[0].kind, Term::Kind::kAggregate);
  EXPECT_EQ(f.terms[0].agg, CalcAgg::kSum);
  EXPECT_EQ(f.terms[0].agg_attr_name, "alcohol");
}

TEST(CLParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseFormula("forall (x in beer)").ok());
  EXPECT_FALSE(ParseFormula("forall x x in beer").ok());
  EXPECT_FALSE(ParseFormula("x in").ok());
  EXPECT_FALSE(ParseFormula("forall x (x in beer implies)").ok());
  EXPECT_FALSE(ParseFormula("forall x (x in beer) trailing").ok());
}

// --- analysis ----------------------------------------------------------------

class AnalyzerTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  Result<AnalyzedFormula> Analyze(const std::string& text) {
    TXMOD_ASSIGN_OR_RETURN(Formula f, ParseFormula(text));
    return AnalyzeFormula(f, db_.schema());
  }
};

TEST_F(AnalyzerTest, ResolvesAttributeNamesToIndices) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      AnalyzedFormula a,
      Analyze("forall x (x in beer implies x.alcohol >= 0)"));
  const Formula& cmp = a.formula.children[0].children[1];
  EXPECT_EQ(cmp.terms[0].attr_index, 3);
  ASSERT_EQ(a.ranges.count("x"), 1u);
  EXPECT_EQ(a.ranges.at("x").name, "beer");
}

TEST_F(AnalyzerTest, ResolvesPositionalSelections) {
  // The paper's x.i form (Definition 4.2).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      AnalyzedFormula a, Analyze("forall x (x in beer implies x.3 >= 0)"));
  const Formula& cmp = a.formula.children[0].children[1];
  EXPECT_EQ(cmp.terms[0].attr_index, 3);
  EXPECT_EQ(cmp.terms[0].attr_name, "alcohol");  // back-filled for printing
}

TEST_F(AnalyzerTest, RejectsFreeVariables) {
  Status st = Analyze("x.alcohol >= 0").status();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, RejectsShadowing) {
  EXPECT_FALSE(
      Analyze("forall x (x in beer implies exists x (x in brewery and "
              "x.name = \"a\"))")
          .ok());
}

TEST_F(AnalyzerTest, RejectsUnknownRelationAndAttribute) {
  EXPECT_FALSE(Analyze("forall x (x in wine implies x.a >= 0)").ok());
  EXPECT_FALSE(Analyze("forall x (x in beer implies x.salinity >= 0)").ok());
}

TEST_F(AnalyzerTest, RejectsConflictingRanges) {
  EXPECT_FALSE(
      Analyze("forall x (x in beer and x in brewery implies x.name = \"a\")")
          .ok());
}

TEST_F(AnalyzerTest, RejectsVariablesWithoutRange) {
  // y is quantified but never given a membership atom.
  EXPECT_FALSE(
      Analyze("forall x, y (x in beer implies x.alcohol >= 0)").ok());
}

TEST_F(AnalyzerTest, TypeChecksComparisons) {
  EXPECT_FALSE(
      Analyze("forall x (x in beer implies x.name >= 0)").ok());
  EXPECT_FALSE(
      Analyze("forall x (x in beer implies x.alcohol = \"high\")").ok());
  TXMOD_EXPECT_OK(
      Analyze("forall x (x in beer implies x.name != \"\")").status());
}

TEST_F(AnalyzerTest, TypeChecksArithmetic) {
  EXPECT_FALSE(
      Analyze("forall x (x in beer implies x.name + 1 = 2)").ok());
  TXMOD_EXPECT_OK(
      Analyze("forall x (x in beer implies x.alcohol * 2 <= 20)").status());
}

TEST_F(AnalyzerTest, TypeChecksAggregates) {
  EXPECT_FALSE(Analyze("sum(beer, name) > 0").ok());
  TXMOD_EXPECT_OK(Analyze("min(beer, name) != \"\"").status());
  TXMOD_EXPECT_OK(Analyze("cnt(beer) >= 0").status());
}

TEST_F(AnalyzerTest, RejectsMltPerDesignDoc) {
  Status st = Analyze("mlt(beer) > 0").status();
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST_F(AnalyzerTest, TupleEqualityRequiresEqualArity) {
  EXPECT_FALSE(
      Analyze("forall x, y (x in beer and y in brewery implies x = y)").ok());
  TXMOD_EXPECT_OK(
      Analyze("forall x, y (x in beer and y in beer implies x = y)")
          .status());
}

// --- negation normal form ---------------------------------------------------

TEST(NnfTest, NegatedUniversalBecomesExistential) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x (x in beer implies x.alcohol >= 0)"));
  Formula nnf = SimplifyNnf(ToNnf(f, /*negate=*/true));
  // ¬∀x(m ⇒ c) = ∃x(m ∧ ¬c)
  ASSERT_EQ(nnf.kind, Formula::Kind::kExists);
  const Formula& body = nnf.children[0];
  ASSERT_EQ(body.kind, Formula::Kind::kAnd);
  EXPECT_EQ(body.children[0].kind, Formula::Kind::kMembership);
  ASSERT_EQ(body.children[1].kind, Formula::Kind::kNot);
  EXPECT_EQ(body.children[1].children[0].kind, Formula::Kind::kCompare);
}

TEST(NnfTest, ComparisonsKeepExplicitNot) {
  // ¬(a >= 0) must NOT become a < 0: null semantics differ.
  TXMOD_ASSERT_OK_AND_ASSIGN(Formula f, ParseFormula("cnt(beer) >= 0"));
  Formula nnf = ToNnf(f, true);
  ASSERT_EQ(nnf.kind, Formula::Kind::kNot);
  EXPECT_EQ(nnf.children[0].cmp, CompareOp::kGe);
}

TEST(NnfTest, DeMorgan) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f, ParseFormula("cnt(beer) > 0 and cnt(brewery) > 0"));
  Formula nnf = ToNnf(f, true);
  EXPECT_EQ(nnf.kind, Formula::Kind::kOr);
  EXPECT_EQ(nnf.children[0].kind, Formula::Kind::kNot);
}

TEST(NnfTest, DoubleNegationVanishes) {
  TXMOD_ASSERT_OK_AND_ASSIGN(Formula f,
                             ParseFormula("not not cnt(beer) > 0"));
  Formula nnf = SimplifyNnf(ToNnf(f, false));
  EXPECT_EQ(nnf.kind, Formula::Kind::kCompare);
}

TEST(NnfTest, PositiveNnfOfImplication) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Formula f,
      ParseFormula("forall x (x in beer implies x.alcohol >= 0)"));
  Formula nnf = ToNnf(f, false);
  ASSERT_EQ(nnf.kind, Formula::Kind::kForall);
  const Formula& body = nnf.children[0];
  // m ⇒ c becomes ¬m ∨ c.
  ASSERT_EQ(body.kind, Formula::Kind::kOr);
  EXPECT_EQ(body.children[0].kind, Formula::Kind::kNot);
  EXPECT_EQ(body.children[0].children[0].kind, Formula::Kind::kMembership);
}

}  // namespace
}  // namespace txmod::calculus
