// End-to-end differential oracle over the paper's running example
// (Example 4.1): the beer/brewery database with its referential and
// domain constraints. Every scenario is executed twice from the same
// start state — once through the transaction modification subsystem
// (the paper's ModT pipeline) and once through the post-hoc checking
// baseline — and both the commit/abort verdict and the resulting
// database state must agree. The baseline re-evaluates every constraint
// in full against the tentative post-state, so it is a trustworthy,
// independently implemented oracle for the modification machinery.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/baseline/posthoc_checker.h"
#include "src/core/subsystem.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

namespace core = txmod::core;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::BeerDomainConstraint;
using txmod::testing::BeerRefIntConstraint;
using txmod::testing::MakeBeerDatabase;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : base_(MakeBeerDatabase()) {
    AddBrewery(&base_, "grolsche", "enschede", "netherlands");
    AddBrewery(&base_, "heineken", "amsterdam", "netherlands");
    AddBeer(&base_, "grolsch", "pilsener", "grolsche", 5.0);
    AddBeer(&base_, "amber", "altbier", "grolsche", 5.0);
    AddBeer(&base_, "heineken", "pilsener", "heineken", 5.0);
  }

  static void DefineConstraints(core::IntegritySubsystem* ics) {
    TXMOD_ASSERT_OK(ics->DefineConstraint("refint", BeerRefIntConstraint()));
    TXMOD_ASSERT_OK(ics->DefineConstraint("domain", BeerDomainConstraint()));
  }

  /// Runs `txn_text` through modification and through post-hoc checking
  /// from identical clones of the base state; checks both engines agree,
  /// and returns the modified-path result for scenario-level assertions.
  txn::TxnResult RunBoth(const std::string& txn_text) {
    // Path A: the subsystem under test (transaction modification).
    mod_db_ = std::make_unique<Database>(base_.Clone());
    core::IntegritySubsystem mod_ics(mod_db_.get());
    DefineConstraints(&mod_ics);
    auto mod_result = mod_ics.ExecuteText(txn_text);
    TXMOD_EXPECT_OK(mod_result.status());
    if (!mod_result.ok()) return txn::TxnResult{};

    // Path B: the post-hoc oracle on its own clone.
    posthoc_db_ = std::make_unique<Database>(base_.Clone());
    core::IntegritySubsystem posthoc_ics(posthoc_db_.get());
    DefineConstraints(&posthoc_ics);
    algebra::AlgebraParser parser(&posthoc_db_->schema());
    auto program = parser.ParseProgram(txn_text);
    TXMOD_EXPECT_OK(program.status());
    if (!program.ok()) return txn::TxnResult{};
    algebra::Transaction txn;
    txn.program = *std::move(program);
    baseline::PostHocChecker checker(&posthoc_ics);
    auto posthoc_result = checker.Execute(txn);
    TXMOD_EXPECT_OK(posthoc_result.status());
    if (!posthoc_result.ok()) return txn::TxnResult{};

    EXPECT_EQ(mod_result->committed, posthoc_result->committed)
        << "engines disagree on: " << txn_text;
    EXPECT_TRUE(mod_db_->SameState(*posthoc_db_))
        << "post-states diverge on: " << txn_text;
    // Aborts must leave the database exactly at the start state.
    if (!mod_result->committed) {
      EXPECT_TRUE(mod_db_->SameState(base_)) << "abort was not atomic";
    }
    return *mod_result;
  }

  Database base_;
  std::unique_ptr<Database> mod_db_;
  std::unique_ptr<Database> posthoc_db_;
};

TEST_F(PaperExampleTest, ValidInsertCommits) {
  txn::TxnResult r = RunBoth(
      "insert(beer, {(\"wieckse\", \"witbier\", \"heineken\", 5.0)});");
  EXPECT_TRUE(r.committed);
  EXPECT_TRUE(mod_db_->Find("beer").ok());
  EXPECT_EQ((*mod_db_->Find("beer"))->size(), 4u);
}

TEST_F(PaperExampleTest, UnknownBreweryAborts) {
  txn::TxnResult r = RunBoth(
      "insert(beer, {(\"phantom\", \"stout\", \"ghost\", 4.5)});");
  EXPECT_FALSE(r.committed);
  EXPECT_NE(r.abort_reason.find("refint"), std::string::npos);
}

TEST_F(PaperExampleTest, NegativeAlcoholAborts) {
  txn::TxnResult r = RunBoth(
      "insert(beer, {(\"void\", \"pilsener\", \"heineken\", -1.0)});");
  EXPECT_FALSE(r.committed);
  EXPECT_NE(r.abort_reason.find("domain"), std::string::npos);
}

TEST_F(PaperExampleTest, DeleteReferencedBreweryAborts) {
  txn::TxnResult r = RunBoth(
      "delete(brewery, select[name = \"grolsche\"](brewery));");
  EXPECT_FALSE(r.committed);
}

TEST_F(PaperExampleTest, DeleteBreweryWithItsBeersCommits) {
  txn::TxnResult r = RunBoth(
      "delete(beer, select[brewery = \"grolsche\"](beer)); "
      "delete(brewery, select[name = \"grolsche\"](brewery));");
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*mod_db_->Find("beer"))->size(), 1u);
  EXPECT_EQ((*mod_db_->Find("brewery"))->size(), 1u);
}

TEST_F(PaperExampleTest, SelfRepairingTransactionCommitsUnderDeferredChecks) {
  // The beer arrives before its brewery, but the transaction as a whole
  // restores integrity — ModP semantics (Definition 2.6) judge only the
  // final state, so both engines commit.
  txn::TxnResult r = RunBoth(
      "insert(beer, {(\"quadrupel\", \"trappist\", \"koningshoeven\", "
      "10.0)}); "
      "insert(brewery, {(\"koningshoeven\", \"tilburg\", "
      "\"netherlands\")});");
  EXPECT_TRUE(r.committed);
}

TEST_F(PaperExampleTest, MixedValidAndViolatingStatementsAbortAtomically) {
  txn::TxnResult r = RunBoth(
      "insert(beer, {(\"wieckse\", \"witbier\", \"heineken\", 5.0)}); "
      "update(beer, name = \"grolsch\", alcohol := 200.0);");
  EXPECT_FALSE(r.committed);
}

TEST_F(PaperExampleTest, UpdateWithinDomainCommits) {
  txn::TxnResult r = RunBoth(
      "update(beer, name = \"grolsch\", alcohol := 4.5);");
  EXPECT_TRUE(r.committed);
  EXPECT_TRUE((*mod_db_->Find("beer"))
                  ->Contains(Tuple({Value::String("grolsch"),
                                    Value::String("pilsener"),
                                    Value::String("grolsche"),
                                    Value::Double(4.5)})));
}

TEST_F(PaperExampleTest, ReadOnlyTransactionCommitsWithoutChanges) {
  txn::TxnResult r = RunBoth("t := select[alcohol > 4.0](beer);");
  EXPECT_TRUE(r.committed);
  EXPECT_TRUE(mod_db_->SameState(base_));
}

}  // namespace
}  // namespace txmod
