// Pins the choices of the physical-plan layer (physical_plan.h): which
// operator implementation each logical shape compiles to, which indexes a
// plan requests, and that both the serial pipeline and the fragment-local
// kernels execute the same plans. Plan choices are load-bearing — the
// integrity subsystem derives its index declarations from them — so they
// are pinned by Explain() dumps here, not left incidental.

#include <string>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/algebra/fingerprint.h"
#include "src/algebra/parser.h"
#include "src/algebra/physical_plan.h"
#include "src/core/subsystem.h"
#include "tests/test_util.h"

namespace txmod::algebra {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class DbContext : public EvalContext {
 public:
  explicit DbContext(const Database* db) : db_(db) {}
  Result<const Relation*> Resolve(RelRefKind kind,
                                  const std::string& name) const override {
    if (kind != RelRefKind::kBase) {
      return Status::FailedPrecondition(
          "auxiliary relations need a transaction context");
    }
    return db_->Find(name);
  }

 private:
  const Database* db_;
};

Result<RelExprPtr> Parse(const Database& db, const std::string& text) {
  AlgebraParser parser(&db.schema());
  return parser.ParseExpression(text);
}

std::string ExplainText(const Database& db, const std::string& text) {
  auto e = Parse(db, text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  auto plan = PhysicalPlan::Compile(*e);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan->Explain();
}

// ---------------------------------------------------------------------------
// Operator choice, pinned via Explain().
// ---------------------------------------------------------------------------

TEST(PhysicalPlanExplainTest, EquiJoinCompilesToHashJoin) {
  Database db = MakeBeerDatabase();
  EXPECT_EQ(ExplainText(db, "join[l.brewery = r.name](beer, brewery)"),
            "hash_join[join, keys=(2=0)]\n"
            "  scan[base beer]\n"
            "  scan[base brewery]\n");
}

TEST(PhysicalPlanExplainTest, NonEquiJoinCompilesToNestedLoop) {
  Database db = MakeBeerDatabase();
  EXPECT_EQ(ExplainText(db, "semijoin[r.alcohol < l.alcohol](beer, beer)"),
            "nested_loop[semijoin]\n"
            "  scan[base beer]\n"
            "  scan[base beer]\n");
}

TEST(PhysicalPlanExplainTest, ProjectionDifferenceCompilesToIndexSetOp) {
  Database db = MakeBeerDatabase();
  EXPECT_EQ(
      ExplainText(db, "diff(project[brewery](beer), project[name](brewery))"),
      "index_set_op[diff, member=base brewery(0)]\n"
      "  project[brewery]\n"
      "    scan[base beer]\n"
      "  project[name]\n"
      "    scan[base brewery]\n");
}

TEST(PhysicalPlanExplainTest,
     BaseProbedAgainstDifferentialCompilesToIndexLookup) {
  // The delete-heavy referential shape: the big base relation on the
  // probe side, the (small) transaction differential on the build side.
  Database db = MakeBeerDatabase();
  EXPECT_EQ(
      ExplainText(db, "semijoin[l.brewery = r.name](beer, dminus(brewery))"),
      "index_lookup[semijoin, probe=beer(2), keys=(2=0)]\n"
      "  scan[base beer]\n"
      "  scan[dminus brewery]\n");
}

TEST(PhysicalPlanExplainTest, AntiJoinAgainstDifferentialStaysHashJoin) {
  // An antijoin must visit every left tuple, so probe inversion buys
  // nothing and the plan keeps the hash join.
  Database db = MakeBeerDatabase();
  EXPECT_EQ(
      ExplainText(db, "antijoin[l.brewery = r.name](beer, dminus(brewery))"),
      "hash_join[antijoin, keys=(2=0)]\n"
      "  scan[base beer]\n"
      "  scan[dminus brewery]\n");
}

// ---------------------------------------------------------------------------
// Index requests: what a plan asks the subsystem to declare.
// ---------------------------------------------------------------------------

TEST(PhysicalPlanTest, IndexRequestsCoverBuildProbeAndMembershipSides) {
  Database db = MakeBeerDatabase();
  // Hash-join build side.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr join, Parse(db, "join[l.brewery = r.name](beer, brewery)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan jp, PhysicalPlan::Compile(join));
  ASSERT_EQ(jp.IndexRequests().size(), 1u);
  EXPECT_EQ(jp.IndexRequests()[0].relation, "brewery");
  EXPECT_EQ(jp.IndexRequests()[0].attrs, std::vector<int>({0}));

  // Index-lookup probe side: the base relation whose index the small
  // differential side probes.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr lookup,
      Parse(db, "semijoin[l.brewery = r.name](beer, dminus(brewery))"));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan lp, PhysicalPlan::Compile(lookup));
  ASSERT_EQ(lp.IndexRequests().size(), 1u);
  EXPECT_EQ(lp.IndexRequests()[0].relation, "beer");
  EXPECT_EQ(lp.IndexRequests()[0].attrs, std::vector<int>({2}));

  // Projection-difference membership side.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr diff,
      Parse(db, "diff(project[brewery](beer), project[name](brewery))"));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan dp, PhysicalPlan::Compile(diff));
  ASSERT_EQ(dp.IndexRequests().size(), 1u);
  EXPECT_EQ(dp.IndexRequests()[0].relation, "brewery");
  EXPECT_EQ(dp.IndexRequests()[0].attrs, std::vector<int>({0}));
}

// ---------------------------------------------------------------------------
// Index-lookup execution: correct with the index, identical without.
// ---------------------------------------------------------------------------

TEST(PhysicalPlanTest, IndexLookupFallsBackWithoutDeclaredIndex) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  for (int i = 0; i < 8; ++i) {
    AddBeer(&db, StrCat("b", i), "lager", i % 2 == 0 ? "heineken" : "gone",
            5.0);
  }
  // dminus is unavailable through DbContext, so aim the same shape at a
  // base relation instead: semijoin(beer, brewery) with brewery tiny.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e, Parse(db, "semijoin[l.brewery = r.name](beer, brewery)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, PhysicalPlan::Compile(e));
  DbContext ctx(&db);
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation without, plan.Execute(ctx));
  EXPECT_EQ(without.size(), 4u);

  // Declare the probe-side index the plan would want for the
  // differential variant and re-run through a *recompiled* lookup plan by
  // building the expression with a differential-bounded right side via
  // literal (literals are delta-bounded too).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr lit_e,
      Parse(db, "semijoin[l.brewery = r.c0](beer, {(\"heineken\")})"));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan lit_plan,
                             PhysicalPlan::Compile(lit_e));
  EXPECT_NE(lit_plan.Explain().find("index_lookup[semijoin, probe=beer(2)"),
            std::string::npos)
      << lit_plan.Explain();

  // Without the index: falls back to a hash join, same result.
  EvalStats no_index;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r1, lit_plan.Execute(ctx, &no_index));
  EXPECT_EQ(r1.size(), 4u);
  EXPECT_EQ(no_index.index_probes, 0u);

  // With the index: probes instead of scanning beer.
  ASSERT_NE((*db.FindMutable("beer"))->IndexOn({2}), nullptr);
  EvalStats with_index;
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation r2, lit_plan.Execute(ctx, &with_index));
  EXPECT_TRUE(r2.SameTuples(r1));
  EXPECT_GE(with_index.index_probes, 1u);
  // The probe side is never scanned: only the single literal tuple is.
  EXPECT_LT(with_index.tuples_scanned, no_index.tuples_scanned);
}

// ---------------------------------------------------------------------------
// Subsystem integration: the delete-heavy check declares and uses the
// probe-side index (the cost-based index choice of the ROADMAP item).
// ---------------------------------------------------------------------------

TEST(PhysicalPlanTest, SubsystemDeclaresProbeSideIndexForDeleteChecks) {
  Database db = bench::MakeKeyFkDatabase(/*keys=*/200, /*fks=*/2000);
  bench::AddUnreferencedKeys(&db, 5);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));

  // The DEL(key_rel) check semijoins fk_rel against dminus(key_rel); the
  // plan requests an index on fk_rel's probe attribute (ref, #1) — on top
  // of the membership index on key_rel(key, #0) the insert check wants.
  EXPECT_NE((*db.FindMutable("fk_rel"))->FindIndex({1}), nullptr);
  EXPECT_NE((*db.FindMutable("key_rel"))->FindIndex({0}), nullptr);

  bool saw_index_lookup = false;
  for (const auto& [stmt, explain] : ics.ExplainPlans()) {
    if (explain.find("index_lookup[semijoin, probe=fk_rel(1), keys=(1=0)]") !=
        std::string::npos) {
      saw_index_lookup = true;
    }
  }
  EXPECT_TRUE(saw_index_lookup);

  // Deleting an unreferenced key runs the check through the index: the
  // 2000-tuple fk_rel is never scanned.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult result,
      ics.ExecuteText("delete(key_rel, {(\"x0\", \"payload\")});"));
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.stats.index_probes, 1u);
  EXPECT_LT(result.stats.tuples_scanned, 100u);

  // Deleting a referenced key must still abort (the index path finds the
  // referencing fk tuples).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult abort_result,
      ics.ExecuteText("delete(key_rel, {(\"k0\", \"payload\")});"));
  EXPECT_FALSE(abort_result.committed);
}

// ---------------------------------------------------------------------------
// Plan cache: definition-time plans are cached; lookups are by identity.
// ---------------------------------------------------------------------------

TEST(PhysicalPlanTest, SubsystemCachesCheckPlansAtDefinitionTime) {
  Database db = MakeBeerDatabase();
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  EXPECT_GT(ics.plan_cache().size(), 0u);
  // Every compiled check statement's expression resolves in the cache.
  for (const core::IntegrityProgram& program : ics.compiled().programs()) {
    for (const Statement& stmt : program.program.statements) {
      if (stmt.expr == nullptr) continue;
      EXPECT_NE(ics.plan_cache().Lookup(stmt.expr.get()), nullptr);
    }
  }
  // Unknown expressions miss.
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr other, Parse(db, "beer"));
  EXPECT_EQ(ics.plan_cache().Lookup(other.get()), nullptr);
}

// ---------------------------------------------------------------------------
// Fragment-local kernel: one operator over materialized inputs agrees
// with serial execution of the same plan node.
// ---------------------------------------------------------------------------

TEST(PhysicalPlanTest, FragmentLocalKernelMatchesSerialJoin) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  AddBrewery(&db, "guinness", "dublin", "ie");
  for (int i = 0; i < 10; ++i) {
    AddBeer(&db, StrCat("b", i), "lager",
            i % 3 == 0 ? "heineken" : (i % 3 == 1 ? "guinness" : "nowhere"),
            4.0 + i);
  }
  for (const char* text :
       {"join[l.brewery = r.name](beer, brewery)",
        "semijoin[l.brewery = r.name](beer, brewery)",
        "antijoin[l.brewery = r.name](beer, brewery)",
        "semijoin[r.alcohol < l.alcohol](beer, beer)",
        "diff(beer, select[alcohol > 8](beer))",
        "intersect(beer, select[alcohol > 8](beer))",
        "union(beer, beer)"}) {
    SCOPED_TRACE(text);
    TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e, Parse(db, text));
    TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, PhysicalPlan::Compile(e));
    DbContext ctx(&db);
    TXMOD_ASSERT_OK_AND_ASSIGN(Relation serial, plan.Execute(ctx));
    // The kernel gets the already-materialized children.
    TXMOD_ASSERT_OK_AND_ASSIGN(
        Relation left,
        PhysicalPlan::Compile(e->left()).value().Execute(ctx));
    TXMOD_ASSERT_OK_AND_ASSIGN(
        Relation right,
        PhysicalPlan::Compile(e->right()).value().Execute(ctx));
    TXMOD_ASSERT_OK_AND_ASSIGN(
        Relation local, ExecuteNodeLocal(plan.root(), left, &right));
    EXPECT_TRUE(local.SameTuples(serial));
  }
}

// ---------------------------------------------------------------------------
// Parameter slots in Explain(): canonical (shape-cached) plans announce
// their slot count and print constants as ?N, so a dump shows exactly
// what varies between the statements sharing the plan. Plain plans are
// unchanged (no header, constants verbatim).
// ---------------------------------------------------------------------------

std::string ExplainCanonical(const Database& db, const std::string& text) {
  auto e = Parse(db, text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  ParameterizedExpr pe = ParameterizeExpr(**e);
  auto plan = PhysicalPlan::Compile(pe.expr,
                                    static_cast<int>(pe.params.size()));
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan->Explain();
}

TEST(PhysicalPlanExplainTest, CanonicalSelectAnnotatesParameterSlots) {
  Database db = MakeBeerDatabase();
  EXPECT_EQ(ExplainCanonical(db, "select[alcohol >= 4.5](beer)"),
            "params: 1\n"
            "select[alcohol >= ?0]\n"
            "  scan[base beer]\n");
  EXPECT_EQ(ExplainCanonical(
                db, "select[alcohol >= 4.5 and type = \"lager\"](beer)"),
            "params: 2\n"
            "select[alcohol >= ?0 and type = ?1]\n"
            "  scan[base beer]\n");
}

TEST(PhysicalPlanExplainTest, CanonicalLiteralAnnotatesSlotRange) {
  Database db = MakeBeerDatabase();
  // Two tuples of arity 3: slots ?0..?5, row-major.
  EXPECT_EQ(
      ExplainCanonical(
          db, "union({(\"a\", \"b\", \"c\"), (\"d\", \"e\", \"f\")}, brewery)"),
      "params: 6\n"
      "union\n"
      "  literal[2 tuples, params ?0..?5]\n"
      "  scan[base brewery]\n");
}

TEST(PhysicalPlanExplainTest, PlainPlansKeepConstantsVerbatim) {
  Database db = MakeBeerDatabase();
  EXPECT_EQ(ExplainText(db, "select[alcohol >= 4.5](beer)"),
            "select[alcohol >= 4.5]\n"
            "  scan[base beer]\n");
}

TEST(PhysicalPlanTest, CanonicalPlanKeepsOperatorAndIndexChoices) {
  Database db = MakeBeerDatabase();
  // Canonicalization must not disturb plan choice: the differential
  // referential-check shape still compiles to an index-lookup join and
  // requests the same probe-side index.
  const char* text = "semijoin[l.brewery = r.name](beer, dminus(brewery))";
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e, Parse(db, text));
  TXMOD_ASSERT_OK_AND_ASSIGN(PhysicalPlan plain, PhysicalPlan::Compile(e));
  ParameterizedExpr pe = ParameterizeExpr(*e);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      PhysicalPlan canon,
      PhysicalPlan::Compile(pe.expr, static_cast<int>(pe.params.size())));
  EXPECT_EQ(canon.Explain(), plain.Explain());  // no constants in this shape
  ASSERT_EQ(canon.IndexRequests().size(), plain.IndexRequests().size());
  ASSERT_EQ(canon.IndexRequests().size(), 1u);
  EXPECT_EQ(canon.IndexRequests()[0].relation, "beer");
  EXPECT_EQ(canon.IndexRequests()[0].attrs, std::vector<int>{2});
}

TEST(PhysicalPlanTest, ExecuteRejectsMissingOrShortBindings) {
  Database db = MakeBeerDatabase();
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e,
                             Parse(db, "select[alcohol >= 4.5](beer)"));
  ParameterizedExpr pe = ParameterizeExpr(*e);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      PhysicalPlan plan,
      PhysicalPlan::Compile(pe.expr, static_cast<int>(pe.params.size())));
  DbContext ctx(&db);
  EXPECT_FALSE(plan.Execute(ctx).ok());  // no binding
  const std::vector<Value> empty;
  EXPECT_FALSE(plan.Execute(ctx, nullptr, &empty).ok());  // short binding
  EXPECT_TRUE(plan.Execute(ctx, nullptr, &pe.params).ok());
}

}  // namespace
}  // namespace txmod::algebra
