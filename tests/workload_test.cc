// The benchmark harness's workload generators feed every perf number the
// project reports; if they produce inconsistent databases or violating
// batches, the benchmarks measure the wrong thing. This suite pins their
// contracts: generated states satisfy the Section 7 constraints, and the
// generated insert batches commit cleanly through the subsystem.

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/algebra/parser.h"
#include "src/baseline/posthoc_checker.h"
#include "src/core/subsystem.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

namespace bench = txmod::bench;
namespace core = txmod::core;

TEST(WorkloadTest, KeyFkDatabaseHasRequestedSizes) {
  Database db = bench::MakeKeyFkDatabase(50, 500);
  EXPECT_EQ((*db.Find("key_rel"))->size(), 50u);
  EXPECT_EQ((*db.Find("fk_rel"))->size(), 500u);
}

TEST(WorkloadTest, GeneratedStateSatisfiesSectionSevenConstraints) {
  Database db = bench::MakeKeyFkDatabase(20, 200);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  // The post-hoc checker with triggers disabled evaluates every constraint
  // in full against the post-state; a no-op transaction therefore checks
  // the generated base state itself.
  algebra::AlgebraParser parser(&db.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(algebra::Transaction txn,
                             parser.ParseTransaction("t := fk_rel;"));
  baseline::PostHocChecker checker(&ics, {/*use_triggers=*/false});
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r, checker.Execute(txn));
  EXPECT_TRUE(r.committed);
}

TEST(WorkloadTest, InsertBatchIsFreshAndValid) {
  Database db = bench::MakeKeyFkDatabase(20, 200);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  algebra::Transaction txn = bench::MakeFkInsertBatch(/*batch=*/50,
                                                      /*keys=*/20);
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r, ics.Execute(txn));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*db.Find("fk_rel"))->size(), 250u);
}

TEST(WorkloadTest, InsertBatchReferencesOnlyExistingKeys) {
  // With zero keys every generated ref dangles; the subsystem must abort
  // the batch — the violating-workload benches rely on this.
  Database db = bench::MakeKeyFkDatabase(0, 0);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  algebra::Transaction txn = bench::MakeFkInsertBatch(/*batch=*/5, /*keys=*/0);
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r, ics.Execute(txn));
  EXPECT_FALSE(r.committed);
  EXPECT_EQ((*db.Find("fk_rel"))->size(), 0u);
}

}  // namespace
}  // namespace txmod
