// Wire-protocol codec semantics, no sockets: frame encode/decode over
// partial buffers and the over-limit path, request/response/outcome/
// key-value message codecs, and their hostile-input rejections. The
// live server (threads + TCP) is exercised in tests/net_server_test.cc.

#include <cstdint>
#include <random>
#include <string>

#include "gtest/gtest.h"
#include "src/common/frame.h"
#include "src/net/protocol.h"
#include "tests/test_util.h"

namespace txmod::net {
namespace {

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripsPayloads) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string("hello\nworld"),
        std::string(100000, 'q'), std::string("\0\xff\x7f binary", 10)}) {
    std::string buffer;
    AppendFrame(payload, &buffer);
    ASSERT_EQ(buffer.size(), kFrameHeaderBytes + payload.size());
    std::string decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(TryDecodeFrame(buffer, 0, kDefaultMaxFramePayload, &decoded,
                             &consumed),
              FrameDecode::kFrame);
    EXPECT_EQ(decoded, payload);
    EXPECT_EQ(consumed, buffer.size());
  }
}

TEST(FrameTest, NeedsMoreOnEveryPartialPrefix) {
  std::string buffer;
  AppendFrame("partial-frame-payload", &buffer);
  std::string decoded;
  std::size_t consumed = 0;
  for (std::size_t len = 0; len < buffer.size(); ++len) {
    EXPECT_EQ(TryDecodeFrame(buffer.substr(0, len), 0,
                             kDefaultMaxFramePayload, &decoded, &consumed),
              FrameDecode::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FrameTest, DecodesBackToBackFramesAtOffsets) {
  std::string buffer;
  AppendFrame("first", &buffer);
  AppendFrame("", &buffer);
  AppendFrame("third", &buffer);
  std::size_t offset = 0;
  std::string decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(TryDecodeFrame(buffer, offset, kDefaultMaxFramePayload, &decoded,
                           &consumed),
            FrameDecode::kFrame);
  EXPECT_EQ(decoded, "first");
  offset += consumed;
  ASSERT_EQ(TryDecodeFrame(buffer, offset, kDefaultMaxFramePayload, &decoded,
                           &consumed),
            FrameDecode::kFrame);
  EXPECT_EQ(decoded, "");
  offset += consumed;
  ASSERT_EQ(TryDecodeFrame(buffer, offset, kDefaultMaxFramePayload, &decoded,
                           &consumed),
            FrameDecode::kFrame);
  EXPECT_EQ(decoded, "third");
  offset += consumed;
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(TryDecodeFrame(buffer, offset, kDefaultMaxFramePayload, &decoded,
                           &consumed),
            FrameDecode::kNeedMore);
}

TEST(FrameTest, RejectsOverLimitDeclaredLength) {
  std::string buffer;
  AppendFrame("0123456789", &buffer);
  std::string decoded;
  std::size_t consumed = 123;
  EXPECT_EQ(TryDecodeFrame(buffer, 0, /*max_payload=*/9, &decoded, &consumed),
            FrameDecode::kTooLarge);
  EXPECT_EQ(consumed, 0u) << "an over-limit frame must not be consumed";
  // The limit is inclusive.
  EXPECT_EQ(TryDecodeFrame(buffer, 0, /*max_payload=*/10, &decoded,
                           &consumed),
            FrameDecode::kFrame);
}

// ---------------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTripsEveryVerb) {
  for (const Verb verb :
       {Verb::kPing, Verb::kBegin, Verb::kExecute, Verb::kCommit,
        Verb::kAbort, Verb::kRun, Verb::kShow, Verb::kPolicy, Verb::kStats}) {
    Request request{verb, "body line 1\nline 2"};
    TXMOD_ASSERT_OK_AND_ASSIGN(const Request decoded,
                               DecodeRequest(EncodeRequest(request)));
    EXPECT_EQ(decoded.verb, verb);
    EXPECT_EQ(decoded.body, request.body);
  }
}

TEST(ProtocolTest, RequestRejectsUnknownVerbs) {
  for (const std::string& payload :
       {std::string("frobnicate\n"), std::string(""), std::string("PING\n"),
        std::string("begin extra-token\n"), std::string(" begin\n")}) {
    EXPECT_FALSE(DecodeRequest(payload).ok()) << "payload: " << payload;
  }
}

// ---------------------------------------------------------------------------
// Response codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ResponseRoundTripsOkAndErr) {
  Response ok;
  ok.body = "line\nanother";
  TXMOD_ASSERT_OK_AND_ASSIGN(Response decoded,
                             DecodeResponse(EncodeResponse(ok)));
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.body, ok.body);

  const Status unavailable =
      Status::Unavailable("commit budget saturated\nsecond line");
  TXMOD_ASSERT_OK_AND_ASSIGN(
      decoded, DecodeResponse(EncodeResponse(ErrorResponse(unavailable))));
  EXPECT_FALSE(decoded.ok());
  const Status restored = ResponseStatus(decoded);
  EXPECT_EQ(restored.code(), unavailable.code());
  EXPECT_EQ(restored.message(), unavailable.message());
}

TEST(ProtocolTest, ResponseRejectsMalformedHeaders) {
  for (const std::string& payload :
       {std::string("yes\n"), std::string("err\nmsg"),
        std::string("err \nmsg"), std::string("err 0\nmsg"),
        std::string("err 99\nmsg"), std::string("err -3\nmsg"),
        std::string("err 3x\nmsg"), std::string("ok extra\nbody")}) {
    EXPECT_FALSE(DecodeResponse(payload).ok()) << "payload: " << payload;
  }
}

// ---------------------------------------------------------------------------
// Outcome codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, OutcomeRoundTripsIncludingMultilineReason) {
  Outcome outcome;
  outcome.committed = false;
  outcome.conflict = true;
  outcome.installed = false;
  outcome.commit_version = 0xFFFFFFFFFFFFFFFFull;
  outcome.attempts = 8;
  outcome.reason = "conflict chain:\n  v12 wrote fk_rel\n  v13 wrote key=1";
  TXMOD_ASSERT_OK_AND_ASSIGN(const Outcome decoded,
                             DecodeOutcome(EncodeOutcome(outcome)));
  EXPECT_EQ(decoded.committed, outcome.committed);
  EXPECT_EQ(decoded.conflict, outcome.conflict);
  EXPECT_EQ(decoded.installed, outcome.installed);
  EXPECT_EQ(decoded.commit_version, outcome.commit_version);
  EXPECT_EQ(decoded.attempts, outcome.attempts);
  EXPECT_EQ(decoded.reason, outcome.reason);
}

TEST(ProtocolTest, OutcomeRejectsMissingAndMalformedFields) {
  const std::string good = EncodeOutcome(Outcome{});
  ASSERT_TRUE(DecodeOutcome(good).ok());
  for (const std::string& body :
       {std::string(""), std::string("committed=1\n"),
        std::string("committed=2\nconflict=0\ninstalled=0\nversion=0\n"
                    "attempts=1\nreason="),
        std::string("committed=1\nconflict=0\ninstalled=0\nversion=-1\n"
                    "attempts=1\nreason="),
        std::string("committed=1\nconflict=0\ninstalled=0\nversion=1x\n"
                    "attempts=1\nreason="),
        std::string("conflict=0\ncommitted=1\ninstalled=0\nversion=0\n"
                    "attempts=1\nreason=")}) {
    EXPECT_FALSE(DecodeOutcome(body).ok()) << "body: " << body;
  }
}

// ---------------------------------------------------------------------------
// Key-value codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, KeyValuesRoundTrip) {
  std::map<std::string, std::string> kv = {
      {"deadline_micros", "250000"},
      {"max_attempts", "4"},
      {"note", "spaces and = inside values are fine"},
  };
  TXMOD_ASSERT_OK_AND_ASSIGN(const auto decoded,
                             DecodeKeyValues(EncodeKeyValues(kv)));
  EXPECT_EQ(decoded, kv);
  TXMOD_ASSERT_OK_AND_ASSIGN(const auto empty, DecodeKeyValues(""));
  EXPECT_TRUE(empty.empty());
}

TEST(ProtocolTest, KeyValuesRejectMalformedLines) {
  EXPECT_FALSE(DecodeKeyValues("no-equals-sign\n").ok());
  EXPECT_FALSE(DecodeKeyValues("=value-without-key\n").ok());
}

// ---------------------------------------------------------------------------
// Randomized codec battery: arbitrary bytes must never round-trip into
// a different message, and decoding must never crash.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RandomizedRequestBodiesSurviveRoundTrip) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 500; ++iter) {
    std::string body;
    const std::size_t len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      body.push_back(static_cast<char>(rng() % 256));
    }
    const Request request{Verb::kExecute, body};
    TXMOD_ASSERT_OK_AND_ASSIGN(const Request decoded,
                               DecodeRequest(EncodeRequest(request)));
    EXPECT_EQ(decoded.body, body);

    Outcome outcome;
    outcome.reason = body;  // reason consumes the remainder: any bytes
    TXMOD_ASSERT_OK_AND_ASSIGN(const Outcome round,
                               DecodeOutcome(EncodeOutcome(outcome)));
    EXPECT_EQ(round.reason, body);
  }
}

}  // namespace
}  // namespace txmod::net
