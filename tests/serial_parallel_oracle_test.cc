// Differential oracle: the serial transaction executor and the parallel
// enforcement substrate run the *same* physical operators since the
// shared-plan refactor, so they must agree — exactly — on commit/abort
// outcomes and final database states, for every workload, node count, and
// threading mode. This test drives both engines through the paper's
// beer/brewery example and through randomized key/fk transactions
// (bench/workload.h's schema) and asserts equivalence after every
// transaction.

#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/algebra/parser.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/parallel/executor.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::parallel {
namespace {

using algebra::Transaction;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

struct OracleParam {
  int nodes;
  bool use_threads;
  /// Threaded-mode knobs (ignored when use_threads is false): pool width
  /// (0 = shared pool), steal-order perturbation, and morsel size — tiny
  /// morsels force many work-stealing decisions per phase, so sweeping
  /// seed × workers pins that interleaving cannot change final states.
  std::size_t workers = 0;
  uint64_t steal_seed = 0;
  std::size_t morsel_tuples = 1024;
};

/// Both engines execute the same modified transaction against their own
/// copy of the same starting state; outcomes and final states must match.
/// `serial_db` and `pdb` evolve statefully across calls so multi-
/// transaction histories stay comparable.
void StepBothEngines(const Transaction& modified, Database* serial_db,
                     ParallelDatabase* pdb, const OracleParam& param,
                     const std::string& trace) {
  SCOPED_TRACE(trace);
  auto serial = txn::ExecuteTransaction(modified, serial_db);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ParallelOptions options;
  options.use_threads = param.use_threads;
  options.num_workers = param.workers;
  options.steal_seed = param.steal_seed;
  options.morsel_tuples = param.morsel_tuples;
  ParallelExecutor exec(pdb, options);
  TXMOD_ASSERT_OK_AND_ASSIGN(ParallelTxnResult parallel,
                             exec.Execute(modified));

  EXPECT_EQ(serial->committed, parallel.committed);
  EXPECT_TRUE(pdb->Merge().SameState(*serial_db));
}

class OracleTest : public ::testing::TestWithParam<OracleParam> {};

// ---------------------------------------------------------------------------
// The paper's beer/brewery e2e workload.
// ---------------------------------------------------------------------------

TEST_P(OracleTest, BeerBreweryWorkloadAgrees) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  AddBrewery(&db, "guinness", "dublin", "ie");
  for (int i = 0; i < 24; ++i) {
    AddBeer(&db, StrCat("beer", i), "lager",
            i % 2 == 0 ? "heineken" : "guinness", 4.0 + (i % 5));
  }
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));

  const std::map<std::string, FragmentationScheme> schemes = {
      {"beer", FragmentationScheme{FragmentationKind::kHash, 2}},
      {"brewery", FragmentationScheme{FragmentationKind::kHash, 0}},
  };
  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db, schemes, GetParam().nodes));
  Database serial_db = db.Clone();

  const std::vector<std::string> workload = {
      // Valid insert: commits.
      "insert(beer, {(\"fresh\", \"ale\", \"guinness\", 6.0)});",
      // Orphan insert: aborts on refint.
      "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});",
      // Negative alcohol: aborts on domain.
      "insert(beer, {(\"neg\", \"ale\", \"heineken\", -1.0)});",
      // Deleting a referenced brewery: aborts.
      "delete(brewery, select[name = \"heineken\"](brewery));",
      // Insert a brewery, then delete it again: commits (net no-op).
      "insert(brewery, {(\"plzen\", \"pilsen\", \"cz\")}); "
      "delete(brewery, select[name = \"plzen\"](brewery));",
      // Self-repairing: insert brewery and a beer referencing it.
      "insert(brewery, {(\"newbrew\", \"oslo\", \"no\")}); "
      "insert(beer, {(\"norse\", \"ale\", \"newbrew\", 5.5)});",
      // Multi-statement with a temporary.
      "tmp := select[alcohol > 7](beer); delete(beer, tmp);",
  };
  algebra::AlgebraParser parser(&db.schema());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               parser.ParseTransaction(workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
    StepBothEngines(modified, &serial_db, &pdb, GetParam(),
                    StrCat("beer workload #", i, ": ", workload[i]));
  }
}

// ---------------------------------------------------------------------------
// Randomized key/fk transactions (bench/workload.h schema), mixing valid
// and violating inserts/deletes so both commit and abort paths are hit.
// ---------------------------------------------------------------------------

TEST_P(OracleTest, RandomizedKeyFkWorkloadAgrees) {
  const int keys = 50, fks = 400;
  Database db = bench::MakeKeyFkDatabase(keys, fks);
  bench::AddUnreferencedKeys(&db, 20);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));

  const std::map<std::string, FragmentationScheme> schemes = {
      {"fk_rel", FragmentationScheme{FragmentationKind::kHash, 1}},
      {"key_rel", FragmentationScheme{FragmentationKind::kHash, 0}}};
  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db, schemes, GetParam().nodes));
  Database serial_db = db.Clone();

  std::mt19937 rng(12345u + static_cast<unsigned>(GetParam().nodes));
  auto pick = [&](int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); };
  int next_id = 2'000'000;

  for (int step = 0; step < 40; ++step) {
    Transaction txn;
    const int kind = pick(5);
    std::string trace;
    switch (kind) {
      case 0: {  // batch of valid fk inserts
        std::vector<Tuple> tuples;
        const int batch = 1 + pick(5);
        for (int i = 0; i < batch; ++i) {
          tuples.push_back(Tuple({Value::Int(next_id++),
                                  Value::String(StrCat("k", pick(keys))),
                                  Value::Double(1.0 + pick(9))}));
        }
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
        trace = "valid fk insert batch";
        break;
      }
      case 1: {  // fk insert with a dangling ref: aborts
        std::vector<Tuple> tuples;
        tuples.push_back(Tuple({Value::Int(next_id++),
                                Value::String(StrCat("zz", pick(1000))),
                                Value::Double(3.0)}));
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
        trace = "dangling fk insert";
        break;
      }
      case 2: {  // delete an (often unreferenced) key
        const bool referenced = pick(2) == 0;
        const std::string key = referenced ? StrCat("k", pick(keys))
                                           : StrCat("x", pick(20));
        txn.program.statements.push_back(algebra::Statement::Delete(
            "key_rel",
            algebra::RelExpr::Literal(
                {Tuple({Value::String(key), Value::String("payload")})}, 2)));
        trace = StrCat("key delete ", key);
        break;
      }
      case 3: {  // delete some fk tuples (always legal)
        std::vector<Tuple> tuples;
        const int batch = 1 + pick(3);
        for (int i = 0; i < batch; ++i) {
          const int id = pick(fks);
          tuples.push_back(Tuple({Value::Int(id),
                                  Value::String(StrCat("k", id % keys)),
                                  Value::Double(1.0 + id % 10)}));
        }
        txn.program.statements.push_back(algebra::Statement::Delete(
            "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
        trace = "fk delete batch";
        break;
      }
      default: {  // fk insert with a negative amount: aborts on domain
        std::vector<Tuple> tuples;
        tuples.push_back(Tuple({Value::Int(next_id++),
                                Value::String(StrCat("k", pick(keys))),
                                Value::Double(-2.0)}));
        txn.program.statements.push_back(algebra::Statement::Insert(
            "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
        trace = "negative-amount fk insert";
        break;
      }
    }
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
    StepBothEngines(modified, &serial_db, &pdb, GetParam(),
                    StrCat("random step ", step, ": ", trace));
  }
}

// ---------------------------------------------------------------------------
// Transaction-manager integration: sessions with a parallel check pool
// (runs of consecutive alarms evaluated concurrently) must agree with
// serial-check sessions transaction by transaction — outcome, abort
// attribution, statement counters, evaluation work, and final state.
// ---------------------------------------------------------------------------

TEST(TxnManagerParallelChecksTest, AgreesWithSerialChecks) {
  Database serial_db = MakeBeerDatabase();
  AddBrewery(&serial_db, "heineken", "amsterdam", "nl");
  for (int i = 0; i < 16; ++i) {
    AddBeer(&serial_db, StrCat("beer", i), "lager", "heineken",
            4.0 + (i % 5));
  }
  Database pooled_db = serial_db.Clone();

  core::IntegritySubsystem serial_ics(&serial_db);
  core::IntegritySubsystem pooled_ics(&pooled_db);
  for (core::IntegritySubsystem* ics : {&serial_ics, &pooled_ics}) {
    TXMOD_ASSERT_OK(ics->DefineConstraint(
        "domain", "forall x (x in beer implies x.alcohol >= 0)"));
    TXMOD_ASSERT_OK(ics->DefineConstraint(
        "refint",
        "forall x (x in beer implies exists y (y in brewery and "
        "x.brewery = y.name))"));
  }

  txn::TxnManagerOptions serial_opts;  // parallel_check_workers = 0
  txn::TxnManagerOptions pooled_opts;
  pooled_opts.parallel_check_workers = 4;
  TXMOD_ASSERT_OK_AND_ASSIGN(auto serial_mgr,
                             txn::TxnManager::Create(&serial_ics,
                                                     serial_opts));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto pooled_mgr,
                             txn::TxnManager::Create(&pooled_ics,
                                                     pooled_opts));

  const std::vector<std::string> workload = {
      "insert(beer, {(\"fresh\", \"ale\", \"heineken\", 6.0)});",
      "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});",   // refint
      "insert(beer, {(\"neg\", \"ale\", \"heineken\", -1.0)});",  // domain
      "delete(brewery, select[name = \"heineken\"](brewery));",   // refint
      "insert(brewery, {(\"plzen\", \"pilsen\", \"cz\")});",
      // Violates both constraints: abort attribution (which alarm fires
      // first) must match serial statement order, not completion order.
      "insert(beer, {(\"dual\", \"ale\", \"nowhere\", -3.0)});",
  };
  algebra::AlgebraParser parser(&serial_db.schema());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    SCOPED_TRACE(StrCat("workload #", i, ": ", workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               parser.ParseTransaction(workload[i]));
    auto serial = serial_mgr->Run(txn);
    auto pooled = pooled_mgr->Run(txn);
    TXMOD_ASSERT_OK(serial.status());
    TXMOD_ASSERT_OK(pooled.status());
    EXPECT_EQ(serial->committed, pooled->committed);
    EXPECT_EQ(serial->abort_reason, pooled->abort_reason);
    EXPECT_EQ(serial->aborting_statement, pooled->aborting_statement);
    EXPECT_EQ(serial->statements_executed, pooled->statements_executed);
    const algebra::EvalStats a = serial->stats.WithoutCacheCounters();
    const algebra::EvalStats b = pooled->stats.WithoutCacheCounters();
    EXPECT_EQ(a.tuples_scanned, b.tuples_scanned);
    EXPECT_EQ(a.tuples_emitted, b.tuples_emitted);
    EXPECT_EQ(a.operators, b.operators);
    EXPECT_EQ(a.index_probes, b.index_probes);
    EXPECT_TRUE(serial_db.SameState(pooled_db));
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodeCountsAndThreading, OracleTest,
    ::testing::Values(OracleParam{1, false}, OracleParam{2, false},
                      OracleParam{4, false}, OracleParam{8, false},
                      OracleParam{2, true}, OracleParam{4, true},
                      OracleParam{8, true}),
    [](const ::testing::TestParamInfo<OracleParam>& param_info) {
      return StrCat(param_info.param.nodes, "nodes_",
                    param_info.param.use_threads ? "threads" : "sequential");
    });

// Threaded determinism sweep: 1/2/4/8 workers × perturbed steal seeds,
// with tiny morsels so every phase schedules many stealable tasks. Final
// states must match the serial engine (and hence simulate mode, covered
// above) for every combination.
INSTANTIATE_TEST_SUITE_P(
    WorkerAndStealSweep, OracleTest,
    ::testing::Values(OracleParam{4, true, 1, 1, 3},
                      OracleParam{4, true, 2, 7, 3},
                      OracleParam{4, true, 2, 1234567, 3},
                      OracleParam{4, true, 4, 7, 3},
                      OracleParam{4, true, 4, 99991, 1},
                      OracleParam{8, true, 8, 7, 3},
                      OracleParam{8, true, 8, 424243, 2}),
    [](const ::testing::TestParamInfo<OracleParam>& param_info) {
      return StrCat(param_info.param.nodes, "nodes_w",
                    param_info.param.workers, "_seed",
                    param_info.param.steal_seed, "_m",
                    param_info.param.morsel_tuples);
    });

}  // namespace
}  // namespace txmod::parallel
