// Unit battery for the storage environment (src/common/vfs.h): POSIX
// round trips, fault-schedule mechanics (nth, sticky, path filters),
// short/torn writes through WriteFullyTo, and — the part everything
// else builds on — the crash-durability model: data survives to the
// last honest fsync, directory entries survive only once the parent
// directory is synced, renames roll back, removals reappear, and a
// poisoned file (fsync-gate/-lie) drops its post-poison bytes no matter
// what later Syncs report.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "src/common/str_util.h"
#include "src/common/vfs.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           StrCat("txmod_vfs_", ::getpid(), "_", info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  FaultInjectingVfs vfs_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST_F(VfsTest, PosixRoundTrip) {
  Vfs* posix = Vfs::Default();
  const std::string path = Path("plain.txt");
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, posix->OpenAppend(path));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "hello ", "test"));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "world", "test"));
  TXMOD_ASSERT_OK(file->Sync());
  TXMOD_ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  EXPECT_EQ(size, 11u);
  TXMOD_ASSERT_OK(file->Truncate(5));
  file.reset();
  EXPECT_EQ(ReadFile(path), "hello");
  TXMOD_ASSERT_OK(posix->Rename(path, Path("renamed.txt")));
  TXMOD_ASSERT_OK(posix->SyncParentDirectory(Path("renamed.txt")));
  EXPECT_EQ(ReadFile(Path("renamed.txt")), "hello");
  TXMOD_ASSERT_OK(posix->Remove(Path("renamed.txt")));
  TXMOD_ASSERT_OK(posix->Remove(Path("renamed.txt")));  // idempotent
}

TEST_F(VfsTest, NthFaultFiresExactlyOnce) {
  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kEIO;
  spec.nth = 2;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "a", "test"));
  const Status second = WriteFullyTo(file.get(), "b", "test");
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.message().find("injected"), std::string::npos);
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "c", "test"));  // 3rd: clean
  EXPECT_EQ(vfs_.faults_fired(), 1u);
  EXPECT_EQ(vfs_.op_count(VfsOp::kWrite), 3u);
}

TEST_F(VfsTest, StickyFaultKeepsFiringUntilCleared) {
  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kENOSPC;
  spec.nth = 1;
  spec.sticky = true;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  for (int i = 0; i < 3; ++i) {
    const Status st = WriteFullyTo(file.get(), "x", "test");
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("no space left"), std::string::npos);
  }
  vfs_.ClearFaults();
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "x", "test"));
  EXPECT_EQ(vfs_.faults_fired(), 3u);
}

TEST_F(VfsTest, PathSubstringScopesTheFault) {
  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kEIO;
  spec.path_substring = "wal";
  spec.sticky = true;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto wal, vfs_.OpenAppend(Path("wal.log")));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto ckpt, vfs_.OpenAppend(Path("ckpt.db")));
  EXPECT_FALSE(WriteFullyTo(wal.get(), "x", "test").ok());
  TXMOD_ASSERT_OK(WriteFullyTo(ckpt.get(), "x", "test"));
}

TEST_F(VfsTest, ShortWriteIsLegalAndWriteFullyLoops) {
  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kShortWrite;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  // The first Write lands only half; WriteFullyTo must loop and finish.
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "0123456789", "test"));
  file.reset();
  EXPECT_EQ(ReadFile(Path("f")), "0123456789");
  EXPECT_EQ(vfs_.faults_fired(), 1u);
}

TEST_F(VfsTest, TornWriteLandsAPrefixAndFails) {
  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kTornWrite;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  EXPECT_FALSE(WriteFullyTo(file.get(), "0123456789", "test").ok());
  file.reset();
  EXPECT_EQ(ReadFile(Path("f")), "01234") << "exactly half must land";
}

TEST_F(VfsTest, CrashDropsBytesAfterTheLastSync) {
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "durable", "test"));
  TXMOD_ASSERT_OK(file->Sync());
  TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("f")));  // entry durable
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), " lost", "test"));
  file.reset();
  EXPECT_EQ(ReadFile(Path("f")), "durable lost");
  vfs_.SimulateCrash();
  EXPECT_EQ(ReadFile(Path("f")), "durable");
}

TEST_F(VfsTest, CrashBeforeDirectorySyncDropsTheWholeFile) {
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "data", "test"));
  TXMOD_ASSERT_OK(file->Sync());  // data synced, entry NOT
  file.reset();
  vfs_.SimulateCrash();
  EXPECT_FALSE(std::filesystem::exists(Path("f")))
      << "a created file without a directory sync must vanish at crash";
}

TEST_F(VfsTest, UnsyncedRenameRollsBackAtCrash) {
  // Durable original under both names' parent dir.
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto old_file, vfs_.OpenAppend(Path("old")));
    TXMOD_ASSERT_OK(WriteFullyTo(old_file.get(), "old-content", "test"));
    TXMOD_ASSERT_OK(old_file->Sync());
    TXMOD_ASSERT_OK_AND_ASSIGN(auto new_file, vfs_.OpenAppend(Path("new")));
    TXMOD_ASSERT_OK(WriteFullyTo(new_file.get(), "target", "test"));
    TXMOD_ASSERT_OK(new_file->Sync());
    TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("old")));
  }
  TXMOD_ASSERT_OK(vfs_.Rename(Path("old"), Path("new")));
  EXPECT_EQ(ReadFile(Path("new")), "old-content");
  vfs_.SimulateCrash();  // rename never dir-synced: both names roll back
  EXPECT_EQ(ReadFile(Path("old")), "old-content");
  EXPECT_EQ(ReadFile(Path("new")), "target");
}

TEST_F(VfsTest, SyncedRenameSurvivesCrash) {
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto old_file, vfs_.OpenAppend(Path("old")));
    TXMOD_ASSERT_OK(WriteFullyTo(old_file.get(), "old-content", "test"));
    TXMOD_ASSERT_OK(old_file->Sync());
    TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("old")));
  }
  TXMOD_ASSERT_OK(vfs_.Rename(Path("old"), Path("new")));
  TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("new")));
  vfs_.SimulateCrash();
  EXPECT_FALSE(std::filesystem::exists(Path("old")));
  EXPECT_EQ(ReadFile(Path("new")), "old-content");
}

TEST_F(VfsTest, UnsyncedRemoveReappearsAtCrash) {
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
    TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "keep", "test"));
    TXMOD_ASSERT_OK(file->Sync());
    TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("f")));
  }
  TXMOD_ASSERT_OK(vfs_.Remove(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  vfs_.SimulateCrash();
  EXPECT_EQ(ReadFile(Path("f")), "keep");
}

TEST_F(VfsTest, FsyncGateFailsOnceThenLiesForever) {
  FaultSpec spec;
  spec.op = VfsOp::kFsync;
  spec.kind = FaultKind::kFsyncGate;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("f")));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "lost", "test"));
  EXPECT_FALSE(file->Sync().ok()) << "the gate fsync must fail";
  // The trap: later Syncs report success without restoring the bytes.
  TXMOD_ASSERT_OK(file->Sync());
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), " more", "test"));
  TXMOD_ASSERT_OK(file->Sync());
  file.reset();
  vfs_.SimulateCrash();
  EXPECT_EQ(ReadFile(Path("f")), "")
      << "nothing after the poison point may survive";
}

TEST_F(VfsTest, FsyncLieReportsSuccessButDropsBytes) {
  FaultSpec spec;
  spec.op = VfsOp::kFsync;
  spec.kind = FaultKind::kFsyncLie;
  vfs_.InjectFault(spec);
  TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
  TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("f")));
  TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "acked-but-lost", "test"));
  TXMOD_ASSERT_OK(file->Sync());  // the lie: success reported
  file.reset();
  vfs_.SimulateCrash();
  EXPECT_EQ(ReadFile(Path("f")), "");
}

TEST_F(VfsTest, CrashResetsDurabilityToCurrentContent) {
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
    TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "base", "test"));
    TXMOD_ASSERT_OK(file->Sync());
    TXMOD_ASSERT_OK(vfs_.SyncParentDirectory(Path("f")));
  }
  vfs_.SimulateCrash();
  // Continue after the crash: new unsynced bytes drop at the NEXT crash,
  // but the pre-crash survivors stay (the model re-baselined).
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("f")));
    TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "+unsynced", "test"));
  }
  vfs_.SimulateCrash();
  EXPECT_EQ(ReadFile(Path("f")), "base");
}

TEST_F(VfsTest, VirtualClockAdvancesBySleepingInstantly) {
  EXPECT_EQ(vfs_.NowMicros(), 0);
  vfs_.SleepMicros(250);
  vfs_.SleepMicros(750);
  EXPECT_EQ(vfs_.NowMicros(), 1000);
  vfs_.AdvanceClock(500);
  EXPECT_EQ(vfs_.NowMicros(), 1500);
  const std::vector<int64_t> sleeps = vfs_.sleep_log();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 250);
  EXPECT_EQ(sleeps[1], 750);
}

TEST_F(VfsTest, RenameAndDirSyncFaultsFire) {
  {
    FaultSpec spec;
    spec.op = VfsOp::kRename;
    spec.kind = FaultKind::kEIO;
    vfs_.InjectFault(spec);
  }
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(auto file, vfs_.OpenAppend(Path("a")));
    TXMOD_ASSERT_OK(WriteFullyTo(file.get(), "x", "test"));
    TXMOD_ASSERT_OK(file->Sync());
  }
  const Status renamed = vfs_.Rename(Path("a"), Path("b"));
  EXPECT_FALSE(renamed.ok());
  EXPECT_TRUE(std::filesystem::exists(Path("a"))) << "failed rename is a no-op";
  vfs_.ClearFaults();
  FaultSpec dir_spec;
  dir_spec.op = VfsOp::kDirSync;
  dir_spec.kind = FaultKind::kEIO;
  vfs_.InjectFault(dir_spec);
  EXPECT_FALSE(vfs_.SyncParentDirectory(Path("a")).ok());
}

}  // namespace
}  // namespace txmod
