#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/rules/rule_parser.h"
#include "src/rules/trigger.h"
#include "src/rules/trigger_gen.h"
#include "tests/test_util.h"

namespace txmod::rules {
namespace {

using txmod::testing::MakeBeerDatabase;

Trigger Ins(const std::string& r) { return Trigger{UpdateType::kIns, r}; }
Trigger Del(const std::string& r) { return Trigger{UpdateType::kDel, r}; }

// --- TriggerSet basics -------------------------------------------------------

TEST(TriggerSetTest, SetSemanticsAndPrinting) {
  TriggerSet s;
  s.Insert(Ins("beer"));
  s.Insert(Ins("beer"));  // duplicate
  s.Insert(Del("brewery"));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Ins("beer")));
  EXPECT_FALSE(s.Contains(Del("beer")));
  // Deterministic order: by relation name, INS before DEL.
  EXPECT_EQ(s.ToString(), "INS(beer), DEL(brewery)");
}

TEST(TriggerSetTest, Intersects) {
  TriggerSet a{Ins("beer")};
  TriggerSet b{Del("beer")};
  TriggerSet c{Ins("beer"), Del("brewery")};
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_TRUE(c.Intersects(a));
  EXPECT_FALSE(TriggerSet().Intersects(a));
}

// --- GetTrigS / GetTrigP (Algorithm 5.2) -------------------------------------

class TrigPTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  algebra::Program Parse(const std::string& text) {
    algebra::AlgebraParser parser(&db_.schema());
    auto p = parser.ParseProgram(text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p.ok() ? *p : algebra::Program{};
  }
};

TEST_F(TrigPTest, InsertYieldsIns) {
  auto p = Parse("insert(beer, {(\"a\", \"b\", \"c\", 1.0)})");
  EXPECT_EQ(GetTrigP(p), (TriggerSet{Ins("beer")}));
}

TEST_F(TrigPTest, DeleteYieldsDel) {
  auto p = Parse("delete(brewery, brewery)");
  EXPECT_EQ(GetTrigP(p), (TriggerSet{Del("brewery")}));
}

TEST_F(TrigPTest, UpdateYieldsBoth) {
  // Definition 4.5: an update is a combined delete and insert.
  auto p = Parse("update(beer, alcohol < 0, alcohol := 0.0)");
  EXPECT_EQ(GetTrigP(p), (TriggerSet{Ins("beer"), Del("beer")}));
}

TEST_F(TrigPTest, AssignAlarmAbortYieldNothing) {
  auto p = Parse("t := project[name](beer); alarm(t); abort");
  EXPECT_TRUE(GetTrigP(p).empty());
}

TEST_F(TrigPTest, ProgramUnionsStatements) {
  auto p = Parse(
      "insert(beer, {(\"a\", \"b\", \"c\", 1.0)});"
      "delete(brewery, brewery)");
  EXPECT_EQ(GetTrigP(p), (TriggerSet{Ins("beer"), Del("brewery")}));
}

TEST_F(TrigPTest, NonTriggeringProgramYieldsNothing) {
  // GetTrigPX, Definition 6.2.
  auto p = Parse("insert(beer, {(\"a\", \"b\", \"c\", 1.0)})");
  p.non_triggering = true;
  EXPECT_TRUE(GetTrigPX(p).empty());
  EXPECT_FALSE(GetTrigP(p).empty());  // plain GetTrigP still sees it
}

// --- GenTrigC (Algorithm 5.7) ------------------------------------------------

TriggerSet Gen(const std::string& text) {
  auto f = calculus::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return GenTrigC(*f);
}

TEST(GenTrigCTest, DomainConstraint) {
  // ∀x(x∈beer ⇒ c(x)): new beer tuples can violate — {INS(beer)}.
  EXPECT_EQ(Gen("forall x (x in beer implies x.alcohol >= 0)"),
            (TriggerSet{Ins("beer")}));
}

TEST(GenTrigCTest, ReferentialConstraint) {
  // Example 4.2's R2: inserts into the referencing relation and deletes
  // from the referenced relation can violate.
  EXPECT_EQ(Gen("forall x (x in beer implies exists y (y in brewery and "
                "x.brewery = y.name))"),
            (TriggerSet{Ins("beer"), Del("brewery")}));
}

TEST(GenTrigCTest, ExistentialConstraint) {
  // ∃x(x∈R ∧ c): only deletes can destroy the witness.
  EXPECT_EQ(Gen("exists x (x in brewery and x.country = \"nl\")"),
            (TriggerSet{Del("brewery")}));
}

TEST(GenTrigCTest, ExclusionConstraint) {
  // ∀x∀y(x∈R ⇒ (y∈S ⇒ x.i ≠ y.j)): inserts on either side.
  EXPECT_EQ(Gen("forall x (x in beer implies forall y (y in brewery implies "
                "x.name != y.name))"),
            (TriggerSet{Ins("beer"), Ins("brewery")}));
}

TEST(GenTrigCTest, NegationSwapsPolarity) {
  // ¬∃x(x∈beer ∧ c): the ∃ under ¬ behaves universally — INS(beer).
  EXPECT_EQ(Gen("not exists x (x in beer and x.alcohol > 12)"),
            (TriggerSet{Ins("beer")}));
  // Double negation restores the original polarity.
  EXPECT_EQ(Gen("not not exists x (x in beer and x.alcohol > 12)"),
            (TriggerSet{Del("beer")}));
}

TEST(GenTrigCTest, ImplicationAntecedentIsNegatedContext) {
  // In (W1 ⇒ W2), W1 is traversed with GenTrigN: an ∃ inside the
  // antecedent acts universally.
  EXPECT_EQ(Gen("exists x (x in brewery and x.country = \"nl\") implies "
                "cnt(beer) > 0"),
            (TriggerSet{Ins("brewery"), Ins("beer"), Del("beer")}));
}

TEST(GenTrigCTest, AggregatesTriggerBothUpdateTypes) {
  EXPECT_EQ(Gen("cnt(beer) <= 1000"),
            (TriggerSet{Ins("beer"), Del("beer")}));
  EXPECT_EQ(Gen("sum(beer, alcohol) <= 100"),
            (TriggerSet{Ins("beer"), Del("beer")}));
}

TEST(GenTrigCTest, AggregatesNestedInArithmeticAreFound) {
  // Documented deviation: GenTrigT recurses through FV applications.
  EXPECT_EQ(Gen("sum(beer, alcohol) / cnt(beer) <= 8"),
            (TriggerSet{Ins("beer"), Del("beer")}));
}

TEST(GenTrigCTest, AuxiliaryRelationsYieldNoTriggers) {
  // Transition constraint: old(beer) cannot be changed by the transaction;
  // only the current-state side triggers.
  EXPECT_EQ(Gen("forall x (x in beer implies forall y (y in old(beer) "
                "implies x.name != y.name or x.alcohol >= y.alcohol))"),
            (TriggerSet{Ins("beer")}));
}

TEST(GenTrigCTest, MixedQuantifiersTransitionStyle) {
  // ∀ in positive context -> INS; inner ∃ -> DEL.
  EXPECT_EQ(Gen("forall x (x in beer implies exists y (y in beer and "
                "x.brewery = y.brewery and x.name != y.name))"),
            (TriggerSet{Ins("beer"), Del("beer")}));
}

// --- rule parsing (Definition 4.7) -------------------------------------------

class RuleParserTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();
};

TEST_F(RuleParserTest, AbortingRuleOfExample42) {
  // R1 of Example 4.2.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      IntegrityRule r,
      ParseRule("R1",
                "WHEN INS(beer) "
                "IF NOT forall x (x in beer implies x.alcohol >= 0) "
                "THEN abort",
                db_.schema()));
  EXPECT_EQ(r.name, "R1");
  EXPECT_EQ(r.triggers, (TriggerSet{Ins("beer")}));
  EXPECT_FALSE(r.triggers_were_generated);
  EXPECT_EQ(r.action_kind, ActionKind::kAbort);
}

TEST_F(RuleParserTest, CompensatingRuleOfExample42) {
  // R2 of Example 4.2: unknown breweries are inserted with null fields.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      IntegrityRule r,
      ParseRule("R2",
                "WHEN INS(beer), DEL(brewery) "
                "IF NOT forall x (x in beer implies exists y (y in brewery "
                "and x.brewery = y.name)) "
                "THEN temp := project[brewery](beer) - project[name](brewery);"
                "     insert(brewery, project[brewery, null, null](temp))",
                db_.schema()));
  EXPECT_EQ(r.triggers, (TriggerSet{Ins("beer"), Del("brewery")}));
  EXPECT_EQ(r.action_kind, ActionKind::kCompensate);
  ASSERT_EQ(r.action.statements.size(), 2u);
  EXPECT_EQ(r.action.statements[0].kind, algebra::StatementKind::kAssign);
  EXPECT_EQ(r.action.statements[1].kind, algebra::StatementKind::kInsert);
}

TEST_F(RuleParserTest, OmittedWhenClauseGeneratesTriggers) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      IntegrityRule r,
      ParseRule("auto",
                "IF NOT forall x (x in beer implies x.alcohol >= 0) "
                "THEN abort",
                db_.schema()));
  EXPECT_TRUE(r.triggers_were_generated);
  EXPECT_EQ(r.triggers, (TriggerSet{Ins("beer")}));
}

TEST_F(RuleParserTest, NonTriggeringFlag) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      IntegrityRule r,
      ParseRule("nt",
                "IF NOT forall x (x in beer implies exists y (y in brewery "
                "and x.brewery = y.name)) "
                "THEN NONTRIGGERING "
                "insert(brewery, project[brewery, null, null]("
                "project[brewery](beer) - project[name](brewery)))",
                db_.schema()));
  EXPECT_TRUE(r.action_non_triggering);
  EXPECT_TRUE(r.action.non_triggering);
  EXPECT_TRUE(GetTrigPX(r.action).empty());
}

TEST_F(RuleParserTest, MalformedRulesRejected) {
  EXPECT_FALSE(ParseRule("x", "THEN abort", db_.schema()).ok());
  EXPECT_FALSE(
      ParseRule("x", "IF NOT cnt(beer) >= 0", db_.schema()).ok());
  EXPECT_FALSE(
      ParseRule("x", "WHEN INS(beer) IF cnt(beer) >= 0 THEN abort",
                db_.schema())
          .ok());
  EXPECT_FALSE(
      ParseRule("x",
                "WHEN FOO(beer) IF NOT cnt(beer) >= 0 THEN abort",
                db_.schema())
          .ok());
  // NONTRIGGERING on abort makes no sense.
  EXPECT_FALSE(
      ParseRule("x",
                "IF NOT forall x (x in beer implies x.alcohol >= 0) "
                "THEN NONTRIGGERING abort",
                db_.schema())
          .ok());
}

TEST_F(RuleParserTest, RuleToStringRoundTripsThroughParser) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      IntegrityRule r,
      ParseRule("R2",
                "WHEN INS(beer), DEL(brewery) "
                "IF NOT forall x (x in beer implies exists y (y in brewery "
                "and x.brewery = y.name)) "
                "THEN temp := project[brewery](beer) - project[name](brewery);"
                "     insert(brewery, project[brewery, null, null](temp))",
                db_.schema()));
  TXMOD_ASSERT_OK_AND_ASSIGN(IntegrityRule r2,
                             ParseRule("R2", r.ToString(), db_.schema()));
  EXPECT_EQ(r2.triggers, r.triggers);
  EXPECT_TRUE(r2.condition.formula.Equals(r.condition.formula));
  EXPECT_EQ(r2.action.statements.size(), r.action.statements.size());
}

}  // namespace
}  // namespace txmod::rules
