#include <sstream>

#include "gtest/gtest.h"
#include "src/relational/persist.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using testing::AddBeer;
using testing::AddBrewery;
using testing::MakeBeerDatabase;

Database RoundTrip(const Database& db) {
  std::ostringstream out;
  Status st = SaveDatabase(db, out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return loaded.ok() ? *std::move(loaded) : Database{};
}

TEST(PersistTest, EmptyDatabaseRoundTrips) {
  Database db = MakeBeerDatabase();
  Database loaded = RoundTrip(db);
  EXPECT_TRUE(loaded.SameState(db));
  EXPECT_TRUE(loaded.Contains("beer"));
  EXPECT_TRUE(loaded.Contains("brewery"));
}

TEST(PersistTest, DataAndSchemaRoundTrip) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  AddBeer(&db, "pils", "lager", "heineken", 5.0);
  db.AdvanceTime();
  db.AdvanceTime();
  Database loaded = RoundTrip(db);
  EXPECT_TRUE(loaded.SameState(db));
  EXPECT_EQ(loaded.logical_time(), 2u);
  TXMOD_ASSERT_OK_AND_ASSIGN(const RelationSchema* schema,
                             loaded.schema().Find("beer"));
  EXPECT_EQ(schema->attribute(3).name, "alcohol");
  EXPECT_EQ(schema->attribute(3).type, AttrType::kDouble);
}

TEST(PersistTest, AwkwardValuesRoundTrip) {
  Database db;
  TXMOD_ASSERT_OK(db.CreateRelation(RelationSchema(
      "t", {Attribute{"s", AttrType::kString},
            Attribute{"d", AttrType::kDouble},
            Attribute{"i", AttrType::kInt}})));
  Relation* rel = *db.FindMutable("t");
  rel->Insert(Tuple({Value::String("with \"quotes\" and \\slashes\\"),
                     Value::Double(0.1), Value::Int(-42)}));
  rel->Insert(Tuple({Value::String("newline\nand tab\t and spaces  x"),
                     Value::Double(1e-300), Value::Int(1)}));
  rel->Insert(Tuple({Value::Null(), Value::Null(), Value::Null()}));
  // 0.1 has no finite decimal representation; the hex-float encoding must
  // restore it bit-exactly (identity, not approximate, equality).
  Database loaded = RoundTrip(db);
  EXPECT_TRUE(loaded.SameState(db));
}

TEST(PersistTest, FileRoundTrip) {
  Database db = MakeBeerDatabase();
  AddBeer(&db, "pils", "lager", "heineken", 5.0);
  const std::string path = ::testing::TempDir() + "/txmod_checkpoint.txt";
  TXMOD_ASSERT_OK(SaveDatabaseToFile(db, path));
  TXMOD_ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabaseFromFile(path));
  EXPECT_TRUE(loaded.SameState(db));
}

TEST(PersistTest, RejectsGarbage) {
  {
    std::istringstream in("not a checkpoint");
    EXPECT_FALSE(LoadDatabase(in).ok());
  }
  {
    std::istringstream in("txmod-checkpoint 99\n");
    EXPECT_FALSE(LoadDatabase(in).ok());
  }
  {
    std::istringstream in(
        "txmod-checkpoint 1\ntuple i:1\n");  // tuple before any relation
    EXPECT_FALSE(LoadDatabase(in).ok());
  }
  {
    std::istringstream in(
        "txmod-checkpoint 1\nrelation r 1\nattr a int\ntuple x:9\nend\n");
    EXPECT_FALSE(LoadDatabase(in).ok());  // bad value encoding
  }
  EXPECT_FALSE(LoadDatabaseFromFile("/nonexistent/path.txt").ok());
}

TEST(PersistTest, SaveAndLoadNeverCopyOrUnshareRelationStates) {
  // Checkpointing is logically read-only and loading builds fresh owned
  // states: neither may go through Database::FindMutable's un-sharing
  // machinery. The pin: with every relation SHARED (an outstanding
  // snapshot holds the other reference), a save/load cycle performs zero
  // clones, copies zero tuples, and creates zero overlays.
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  for (int i = 0; i < 500; ++i) {
    AddBeer(&db, "beer" + std::to_string(i), "lager", "heineken", 4.0);
  }
  Database snapshot = db.Clone();

  CowStats::Reset();
  std::ostringstream out;
  TXMOD_ASSERT_OK(SaveDatabase(db, out));
  std::istringstream in(out.str());
  TXMOD_ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabase(in));
  EXPECT_EQ(CowStats::relation_clones.load(), 0u);
  EXPECT_EQ(CowStats::cloned_tuples.load(), 0u);
  EXPECT_EQ(CowStats::overlays_created.load(), 0u);
  EXPECT_TRUE(loaded.SameState(db));

  // Saving an overlay state works too (SortedTuples iterates the visible
  // contents): mutate through the master, which layers an overlay.
  (*db.FindMutable("beer"))
      ->Insert(Tuple({Value::String("late"), Value::String("ale"),
                      Value::String("heineken"), Value::Double(6.0)}));
  ASSERT_TRUE((*db.Find("beer"))->is_overlay());
  std::ostringstream out2;
  TXMOD_ASSERT_OK(SaveDatabase(db, out2));
  std::istringstream in2(out2.str());
  TXMOD_ASSERT_OK_AND_ASSIGN(Database loaded2, LoadDatabase(in2));
  EXPECT_TRUE(loaded2.SameState(db));
  EXPECT_EQ((*loaded2.Find("beer"))->size(), 501u);
}

TEST(PersistTest, TupleTypeMismatchRejected) {
  std::istringstream in(
      "txmod-checkpoint 1\n"
      "relation r 1\n"
      "attr a int\n"
      "tuple s:\"oops\"\n"
      "end\n");
  EXPECT_FALSE(LoadDatabase(in).ok());
}

}  // namespace
}  // namespace txmod
