#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/core/subsystem.h"
#include "src/rules/trigger_gen.h"
#include "tests/test_util.h"

namespace txmod::core {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class SubsystemTest : public ::testing::Test {
 protected:
  SubsystemTest() : db_(MakeBeerDatabase()), ics_(&db_) {}
  Database db_;
  IntegritySubsystem ics_;
};

TEST_F(SubsystemTest, DefineConstraintGeneratesAbortingRule) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  ASSERT_EQ(ics_.rules().size(), 1u);
  const rules::IntegrityRule& rule = ics_.rules()[0];
  EXPECT_EQ(rule.name, "domain");
  EXPECT_TRUE(rule.triggers_were_generated);
  EXPECT_EQ(rule.action_kind, rules::ActionKind::kAbort);
  ASSERT_EQ(ics_.compiled().size(), 1u);
  EXPECT_TRUE(ics_.compiled().programs()[0].differential);
  EXPECT_TRUE(ics_.compiled().programs()[0].non_triggering);
}

TEST_F(SubsystemTest, DuplicateNamesRejected) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint("c", "cnt(beer) <= 10"));
  Status st = ics_.DefineConstraint("c", "cnt(brewery) <= 10");
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ics_.rules().size(), 1u);
}

TEST_F(SubsystemTest, MalformedDefinitionsRejectedCleanly) {
  // CL syntax error.
  EXPECT_FALSE(ics_.DefineConstraint("bad1", "forall x x in beer").ok());
  // Unknown relation.
  EXPECT_FALSE(
      ics_.DefineConstraint("bad2", "forall x (x in wine implies x.a > 0)")
          .ok());
  // Type error.
  EXPECT_FALSE(
      ics_.DefineConstraint("bad3",
                            "forall x (x in beer implies x.name >= 1)")
          .ok());
  // Constraint that nothing can violate (no triggers derivable).
  EXPECT_FALSE(
      ics_.DefineConstraint(
              "bad4",
              "forall x (x in old(beer) implies x.alcohol >= 0)")
          .ok());
  EXPECT_TRUE(ics_.rules().empty());
  EXPECT_TRUE(ics_.compiled().empty());
}

TEST_F(SubsystemTest, DropRuleRecompiles) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint("c1", "cnt(beer) <= 10"));
  TXMOD_ASSERT_OK(ics_.DefineConstraint("c2", "cnt(brewery) <= 10"));
  EXPECT_EQ(ics_.compiled().size(), 2u);
  TXMOD_ASSERT_OK(ics_.DropRule("c1"));
  EXPECT_EQ(ics_.rules().size(), 1u);
  EXPECT_EQ(ics_.compiled().size(), 1u);
  EXPECT_EQ(ics_.compiled().programs()[0].rule_name, "c2");
  EXPECT_EQ(ics_.DropRule("c1").code(), StatusCode::kNotFound);
}

TEST_F(SubsystemTest, ExecuteTextParsesBrackets) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r1,
      ics_.ExecuteText("begin insert(beer, {(\"a\", \"t\", \"b\", 5.0)}); "
                       "end"));
  EXPECT_TRUE(r1.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r2,
      ics_.ExecuteText("insert(beer, {(\"c\", \"t\", \"b\", 5.0)});"));
  EXPECT_TRUE(r2.committed);
  EXPECT_FALSE(ics_.ExecuteText("insert(nowhere, {(1)});").ok());
}

TEST_F(SubsystemTest, ExecuteUncheckedSkipsEnforcement) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  algebra::AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      algebra::Transaction txn,
      parser.ParseTransaction(
          "insert(beer, {(\"bad\", \"t\", \"b\", -1.0)});"));
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r, ics_.ExecuteUnchecked(txn));
  EXPECT_TRUE(r.committed);  // violation not caught — by design
  EXPECT_EQ((*db_.Find("beer"))->size(), 1u);
}

TEST_F(SubsystemTest, ValidateRuleTriggersFlagsMissingTriggers) {
  // Designer wrote only INS(beer); GenTrigC would also derive
  // DEL(brewery) for the referential condition.
  TXMOD_ASSERT_OK(ics_.DefineRule(
      "partial",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN abort"));
  const std::vector<std::string> warnings = ics_.ValidateRuleTriggers();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("partial"), std::string::npos);
  EXPECT_NE(warnings[0].find("DEL(brewery)"), std::string::npos);
}

TEST_F(SubsystemTest, ValidateRuleTriggersQuietForGeneratedSets) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  EXPECT_TRUE(ics_.ValidateRuleTriggers().empty());
}

TEST_F(SubsystemTest, ProgrammaticRuleDefinition) {
  auto parsed = calculus::ParseFormula("cnt(beer) <= 2");
  TXMOD_ASSERT_OK(parsed.status());
  auto analyzed = calculus::AnalyzeFormula(*parsed, db_.schema());
  TXMOD_ASSERT_OK(analyzed.status());
  rules::IntegrityRule rule;
  rule.name = "prog";
  rule.condition = *analyzed;
  rule.triggers = rules::GenTrigC(rule.condition.formula);
  rule.action_kind = rules::ActionKind::kAbort;
  TXMOD_ASSERT_OK(ics_.DefineRule(std::move(rule)));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult ok_r,
      ics_.ExecuteText("insert(beer, {(\"a\", \"t\", \"b\", 1.0), "
                       "(\"b\", \"t\", \"b\", 1.0)});"));
  EXPECT_TRUE(ok_r.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult bad_r,
      ics_.ExecuteText("insert(beer, {(\"c\", \"t\", \"b\", 1.0)});"));
  EXPECT_FALSE(bad_r.committed);
}

TEST_F(SubsystemTest, ProgrammaticRuleValidation) {
  rules::IntegrityRule nameless;
  EXPECT_EQ(ics_.DefineRule(std::move(nameless)).code(),
            StatusCode::kInvalidArgument);
  rules::IntegrityRule no_triggers;
  no_triggers.name = "x";
  EXPECT_EQ(ics_.DefineRule(std::move(no_triggers)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SubsystemTest, IntegrityProgramToString) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  const std::string s = ics_.compiled().programs()[0].ToString();
  EXPECT_NE(s.find("domain"), std::string::npos);
  EXPECT_NE(s.find("INS(beer)"), std::string::npos);
  EXPECT_NE(s.find("(non-triggering)"), std::string::npos);
  EXPECT_NE(s.find("(differential)"), std::string::npos);
  EXPECT_NE(s.find("alarm("), std::string::npos);
}

TEST_F(SubsystemTest, TransitionConstraintEndToEnd) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  // Breweries may be added but never removed.
  TXMOD_ASSERT_OK(ics_.DefineRule(
      "grow_only",
      "WHEN DEL(brewery) "
      "IF NOT forall x (x in old(brewery) implies exists y (y in brewery "
      "and x = y)) "
      "THEN abort"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult add_r,
      ics_.ExecuteText("insert(brewery, {(\"new\", \"x\", \"y\")});"));
  EXPECT_TRUE(add_r.committed);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult del_r,
      ics_.ExecuteText(
          "delete(brewery, select[name = \"new\"](brewery));"));
  EXPECT_FALSE(del_r.committed);
  // Delete + immediate re-insert nets out: the transition holds.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult redo_r,
      ics_.ExecuteText("delete(brewery, select[name = \"new\"](brewery)); "
                       "insert(brewery, {(\"new\", \"x\", \"y\")});"));
  EXPECT_TRUE(redo_r.committed);
}

TEST_F(SubsystemTest, SelfKeyConstraintEndToEnd) {
  // Key constraint via self-pair: beer names are unique.
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "unique_name",
      "forall x, y (x in beer and y in beer implies "
      "x.name != y.name or x = y)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r1,
      ics_.ExecuteText("insert(beer, {(\"pils\", \"t\", \"b\", 5.0)});"));
  EXPECT_TRUE(r1.committed);
  // Same name, different tuple: violates the key.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r2,
      ics_.ExecuteText("insert(beer, {(\"pils\", \"t\", \"b\", 6.0)});"));
  EXPECT_FALSE(r2.committed);
  // Identical tuple: set semantics, no duplicate, no violation.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r3,
      ics_.ExecuteText("insert(beer, {(\"pils\", \"t\", \"b\", 5.0)});"));
  EXPECT_TRUE(r3.committed);
}

TEST_F(SubsystemTest, ImmediatePlacementOption) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  SubsystemOptions options;
  options.placement = CheckPlacement::kImmediate;
  IntegritySubsystem immediate(&db_, options);
  TXMOD_ASSERT_OK(immediate.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  // Self-repairing transaction: commits under the default deferred
  // placement (see modifier_test.cc), aborts under immediate placement.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      immediate.ExecuteText(
          "delete(brewery, select[name = \"heineken\"](brewery)); "
          "insert(brewery, {(\"heineken\", \"amsterdam\", \"nl\")});"));
  EXPECT_FALSE(r.committed);
}

TEST_F(SubsystemTest, MultipleRulesEnforcedTogether) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  TXMOD_ASSERT_OK(ics_.DefineConstraint("cap", "cnt(beer) <= 2"));
  // Violates only the third rule.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_.ExecuteText(
          "insert(beer, {(\"a\", \"t\", \"heineken\", 1.0), "
          "(\"b\", \"t\", \"heineken\", 2.0), "
          "(\"c\", \"t\", \"heineken\", 3.0)});"));
  EXPECT_FALSE(r.committed);
  EXPECT_NE(r.abort_reason.find("cap"), std::string::npos);
}

TEST_F(SubsystemTest, DefiningConstraintsDeclaresCheckIndexes) {
  // The referential constraint's compiled differential checks probe
  // brewery on its name attribute on every triggered transaction; the
  // definition declares the matching relation index up front (pay at
  // definition time, not at enforcement time).
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  TXMOD_ASSERT_OK(
      ics_.DefineConstraint("refint", testing::BeerRefIntConstraint()));
  const Relation* brewery = *db_.Find("brewery");
  EXPECT_GE(brewery->index_count(), 1u);
  EXPECT_NE(brewery->FindIndex({0}), nullptr);
  EXPECT_EQ(brewery->FindIndex({0})->size(), brewery->size());
}

TEST_F(SubsystemTest, IndexesStayCoherentAcrossCommitsAndAborts) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  TXMOD_ASSERT_OK(
      ics_.DefineConstraint("refint", testing::BeerRefIntConstraint()));
  ASSERT_NE((*db_.Find("brewery"))->FindIndex({0}), nullptr);

  // A valid insert commits through the indexed check path.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult ok,
      ics_.ExecuteText(
          "insert(beer, {(\"pils\", \"lager\", \"heineken\", 5.0)});"));
  EXPECT_TRUE(ok.committed);

  // A dangling reference aborts; the rollback restores the database AND
  // the index (Erase maintains it).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult bad,
      ics_.ExecuteText(
          "insert(beer, {(\"x\", \"lager\", \"nowhere\", 5.0)});"));
  EXPECT_FALSE(bad.committed);
  EXPECT_EQ((*db_.Find("beer"))->size(), 1u);

  // Growing the referenced side through a transaction keeps the index
  // coherent: a beer referencing the new brewery now commits.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult grow,
      ics_.ExecuteText(
          "insert(brewery, {(\"plzen\", \"pilsen\", \"cz\")});"));
  EXPECT_TRUE(grow.committed);
  EXPECT_EQ((*db_.Find("brewery"))->FindIndex({0})->size(), 2u);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult ok2,
      ics_.ExecuteText(
          "insert(beer, {(\"urquell\", \"lager\", \"plzen\", 4.4)});"));
  EXPECT_TRUE(ok2.committed);

  // Deleting a still-referenced brewery aborts (the dminus check), and
  // the rollback re-inserts the tuple into both the set and the index.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult del,
      ics_.ExecuteText("delete(brewery, {(\"plzen\", \"pilsen\", \"cz\")});"));
  EXPECT_FALSE(del.committed);
  EXPECT_EQ((*db_.Find("brewery"))->size(), 2u);
  EXPECT_EQ((*db_.Find("brewery"))->FindIndex({0})->size(), 2u);
}

}  // namespace
}  // namespace txmod::core
