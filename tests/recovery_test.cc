// Crash-recovery battery for the differential WAL (src/relational/wal.h)
// and the TxnManager durability path: kill-at-any-point truncation sweeps
// (every byte length of the log), corrupt-tail records, checkpoint +
// truncate round trips, torn-tail repair on reopen, and a randomized
// checkpoint/WAL property — recovery must always restore exactly a
// committed prefix, matching a serial-replay oracle captured live.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/relational/persist.h"
#include "src/relational/wal.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

/// A scratch directory honoring TXMOD_TEST_ARTIFACT_DIR (the CI stress
/// job sets it and uploads the WAL files of failing runs).
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* artifact_dir = std::getenv("TXMOD_TEST_ARTIFACT_DIR");
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::filesystem::path base =
        artifact_dir != nullptr ? std::filesystem::path(artifact_dir)
                                : std::filesystem::temp_directory_path();
    dir_ = base / StrCat("txmod_recovery_", ::getpid(), "_", info->name());
    std::filesystem::create_directories(dir_);
    options_.wal_path = (dir_ / "wal.log").string();
    options_.checkpoint_path = (dir_ / "checkpoint.db").string();
  }

  void TearDown() override {
    // Keep the files for upload when the test failed and an artifact dir
    // is configured; clean up otherwise.
    const bool keep = ::testing::Test::HasFailure() &&
                      std::getenv("TXMOD_TEST_ARTIFACT_DIR") != nullptr;
    if (!keep) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::filesystem::path dir_;
  TxnManagerOptions options_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct LiveRun {
  Database db;  // final live state
  std::vector<Database> prefix_states;  // state after commit 0..N
  std::string wal_bytes;
};

/// Runs `txn_texts` through a WAL-backed manager, capturing the committed
/// state after every transaction — the serial-replay oracle the recovery
/// sweeps compare against.
LiveRun RunWorkload(const TxnManagerOptions& options,
                    const std::vector<std::string>& txn_texts) {
  LiveRun run;
  run.db = bench::MakeKeyFkDatabase(10, 30);
  bench::AddUnreferencedKeys(&run.db, 4);
  core::IntegritySubsystem ics(&run.db);
  EXPECT_TRUE(ics.DefineConstraint("domain", bench::DomainConstraint()).ok());
  EXPECT_TRUE(ics.DefineConstraint("refint", bench::RefIntConstraint()).ok());
  auto manager = TxnManager::Create(&ics, options);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  run.prefix_states.push_back(run.db.Clone());  // before any commit
  for (const std::string& text : txn_texts) {
    auto result = (*manager)->RunText(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if ((*result).committed && (*result).installed) {
      run.prefix_states.push_back(run.db.Clone());
    }
  }
  run.wal_bytes = ReadFile(options.wal_path);
  return run;
}

std::vector<std::string> DefaultWorkload() {
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    texts.push_back(StrCat("insert(fk_rel, {(", 5000 + i, ", \"k", i % 10,
                           "\", ", 1 + i, ".5)});"));
  }
  // An aborting transaction in the middle: must leave no WAL trace.
  texts.insert(texts.begin() + 3,
               "insert(fk_rel, {(9999, \"nope\", 1.0)});");
  texts.push_back(
      "delete(key_rel, {(\"x0\", \"payload\")}); "
      "insert(key_rel, {(\"fresh\", \"payload\")});");
  return texts;
}

TEST_F(RecoveryTest, CheckpointPlusWalRoundTrip) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(recovered.SameState(run.db, /*compare_time=*/true));
  EXPECT_FALSE(stats.tail_dropped);
  EXPECT_EQ(stats.records_read, run.prefix_states.size() - 1);
}

TEST_F(RecoveryTest, KillAtEveryByteRestoresACommittedPrefix) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  ASSERT_GT(run.prefix_states.size(), 3u);

  // Simulate a crash at every possible write boundary: truncate the WAL
  // to each byte length, recover, and require the result to equal some
  // committed prefix — never a torn half-transaction — with the restored
  // prefix growing monotonically in the truncation length.
  std::size_t last_prefix = 0;
  for (std::size_t len = 0; len <= run.wal_bytes.size(); ++len) {
    WriteFile(options_.wal_path, run.wal_bytes.substr(0, len));
    auto recovered = TxnManager::Recover(options_);
    ASSERT_TRUE(recovered.ok())
        << "len " << len << ": " << recovered.status().ToString();
    std::size_t matched = run.prefix_states.size();
    for (std::size_t p = 0; p < run.prefix_states.size(); ++p) {
      if (recovered->SameState(run.prefix_states[p], /*compare_time=*/true)) {
        matched = p;
        break;
      }
    }
    ASSERT_LT(matched, run.prefix_states.size())
        << "truncation at byte " << len
        << " recovered a state that is no committed prefix";
    ASSERT_GE(matched, last_prefix)
        << "truncation at byte " << len << " lost a previously durable "
        << "commit";
    last_prefix = matched;
  }
  EXPECT_EQ(last_prefix, run.prefix_states.size() - 1)
      << "the full WAL must restore every commit";
}

TEST_F(RecoveryTest, CorruptTailDropsOnlyTheTail) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  // Flip a byte inside the LAST record's body: exactly that record (and
  // nothing before it) must be dropped.
  std::string bytes = run.wal_bytes;
  const std::size_t last_txn = bytes.rfind("\ntxn ");
  ASSERT_NE(last_txn, std::string::npos);
  const std::size_t flip = bytes.find("k", last_txn);
  ASSERT_NE(flip, std::string::npos);
  bytes[flip] = 'q';
  WriteFile(options_.wal_path, bytes);

  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(stats.tail_dropped) << "corruption must be detected";
  EXPECT_TRUE(recovered.SameState(
      run.prefix_states[run.prefix_states.size() - 2],
      /*compare_time=*/true))
      << "recovery must stop exactly before the corrupt record";
}

TEST_F(RecoveryTest, CorruptionMidLogCutsEverythingAfterIt) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  // Corrupt the FIRST record: recovery must fall back to the checkpoint
  // alone (records after a corruption are unreachable by design — the
  // prefix contract).
  std::string bytes = run.wal_bytes;
  const std::size_t first_txn = bytes.find("txn ");
  ASSERT_NE(first_txn, std::string::npos);
  bytes[first_txn + 5] ^= 0x1;
  WriteFile(options_.wal_path, bytes);

  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(stats.tail_dropped);
  EXPECT_TRUE(recovered.SameState(run.prefix_states.front(),
                                  /*compare_time=*/true));
}

TEST_F(RecoveryTest, CheckpointTruncatesAndRecoveryUsesBoth) {
  Database db = bench::MakeKeyFkDatabase(10, 30);
  bench::AddUnreferencedKeys(&db, 4);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options_));

  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(7001, \"k1\", 2.0)});").status());
  TXMOD_ASSERT_OK(manager->Checkpoint());
  // The WAL shrank back to its header.
  EXPECT_LT(ReadFile(options_.wal_path).size(), 32u);
  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(7002, \"k2\", 2.0)});").status());

  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_));
  EXPECT_TRUE(recovered.SameState(db, /*compare_time=*/true));
  EXPECT_EQ(manager->stats().checkpoints, 1u);
}

TEST_F(RecoveryTest, StaleWalRecordsBelowCheckpointAreSkipped) {
  // A crash between checkpoint rename and WAL truncation leaves records
  // the checkpoint already covers; replay must skip them, not re-apply.
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  TXMOD_ASSERT_OK(CheckpointDatabaseToFile(run.db, options_.checkpoint_path));
  // WAL deliberately NOT truncated.
  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(recovered.SameState(run.db, /*compare_time=*/true));
  EXPECT_EQ(stats.records_skipped, run.prefix_states.size() - 1);
}

TEST_F(RecoveryTest, TornTailIsRepairedOnReopen) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  // Tear the tail mid-record, then restart a manager over the recovered
  // state: Create() must repair the log so new commits land after the
  // valid prefix and remain recoverable.
  WriteFile(options_.wal_path,
            run.wal_bytes.substr(0, run.wal_bytes.size() - 7));
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_));
  const std::size_t torn_prefix = run.prefix_states.size() - 2;
  ASSERT_TRUE(
      recovered.SameState(run.prefix_states[torn_prefix],
                          /*compare_time=*/true));

  core::IntegritySubsystem ics(&recovered);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options_));
  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(8001, \"k3\", 2.0)});").status());

  TXMOD_ASSERT_OK_AND_ASSIGN(Database after, TxnManager::Recover(options_));
  EXPECT_TRUE(after.SameState(recovered, /*compare_time=*/true));
}

TEST_F(RecoveryTest, RandomizedCheckpointWalProperty) {
  // Randomized workload with interleaved checkpoints: after every step
  // the recovered state must equal the live committed state.
  Database db = bench::MakeKeyFkDatabase(12, 40);
  bench::AddUnreferencedKeys(&db, 6);
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options_));

  std::mt19937 rng(424242u);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<unsigned>(n));
  };
  int next_id = 40'000;
  for (int step = 0; step < 40; ++step) {
    switch (pick(5)) {
      case 0:
        TXMOD_ASSERT_OK(manager->Checkpoint());
        break;
      case 1:  // aborting insert
        TXMOD_ASSERT_OK(
            manager
                ->RunText(StrCat("insert(fk_rel, {(", next_id++,
                                 ", \"gone\", 1.0)});"))
                .status());
        break;
      case 2:  // delete + reinsert of a shared key
        TXMOD_ASSERT_OK(
            manager
                ->RunText(StrCat("delete(key_rel, {(\"x", pick(6),
                                 "\", \"payload\")});"))
                .status());
        break;
      default:
        TXMOD_ASSERT_OK(
            manager
                ->RunText(StrCat("insert(fk_rel, {(", next_id++, ", \"k",
                                 pick(12), "\", ", 1 + pick(8), ".0)});"))
                .status());
        break;
    }
    if (step % 8 == 0) {
      TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                                 TxnManager::Recover(options_));
      ASSERT_TRUE(recovered.SameState(db, /*compare_time=*/true))
          << "recovery diverged at step " << step;
    }
  }
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_));
  EXPECT_TRUE(recovered.SameState(db, /*compare_time=*/true));
}

TEST_F(RecoveryTest, GroupCommitCountersAreCoherent) {
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  (void)run;
  // Re-open the log and exercise Append/Sync directly.
  TXMOD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal,
                             WriteAheadLog::Open(options_.wal_path));
  EXPECT_EQ(wal.appended_lsn(), 0u);
  WalRecord rec;
  rec.version = 12345;  // never applied; only the log mechanics matter
  TXMOD_ASSERT_OK_AND_ASSIGN(uint64_t lsn, wal.Append(rec));
  EXPECT_EQ(lsn, 1u);
  EXPECT_LT(wal.durable_lsn(), lsn + 1);
  TXMOD_ASSERT_OK(wal.Sync(lsn));
  EXPECT_GE(wal.durable_lsn(), lsn);
  EXPECT_GE(wal.fsync_count(), 1u);
  TXMOD_ASSERT_OK(wal.Truncate());
  EXPECT_EQ(ReadFile(options_.wal_path), "txmod-wal 1\n");
}

// ---------------------------------------------------------------------------
// Poisoned-WAL contract: after any failed fsync, the log must never again
// report durability — every later Append/Sync fails, naming the original
// cause. ("fsyncgate": retrying fsync after a failure silently loses the
// pages the kernel already dropped.)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Sharded WAL: per-shard streams, commit fan-out, stitched recovery.
// ---------------------------------------------------------------------------

/// DefaultWorkload plus one transaction touching BOTH relations, so at
/// least one commit fans out across shards whenever fk_rel and key_rel
/// route differently.
std::vector<std::string> FanOutWorkload() {
  std::vector<std::string> texts = DefaultWorkload();
  texts.push_back(
      "insert(key_rel, {(\"fresh2\", \"payload\")}); "
      "insert(fk_rel, {(7000, \"fresh2\", 2.5)});");
  return texts;
}

TEST_F(RecoveryTest, ShardedWalRoundTrip) {
  options_.wal_shards = 3;
  LiveRun run = RunWorkload(options_, FanOutWorkload());
  // The log lives in per-shard streams; nothing at the legacy path.
  EXPECT_FALSE(std::filesystem::exists(options_.wal_path));
  for (uint32_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(std::filesystem::exists(
        ShardedWal::ShardPath(options_.wal_path, k)))
        << "missing shard stream " << k;
  }
  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(recovered.SameState(run.db, /*compare_time=*/true));
  EXPECT_FALSE(stats.tail_dropped) << stats.tail_error;
  EXPECT_EQ(stats.records_read, run.prefix_states.size() - 1);
}

TEST_F(RecoveryTest, ShardedTornTailRestoresACommittedPrefix) {
  options_.wal_shards = 2;
  LiveRun run = RunWorkload(options_, FanOutWorkload());
  // Tear the tail of each shard stream in turn: recovery must still
  // restore exactly some committed prefix — the contiguity cut drops
  // every version at or above the torn one, on every stream.
  for (uint32_t torn = 0; torn < 2; ++torn) {
    const std::string sp = ShardedWal::ShardPath(options_.wal_path, torn);
    const std::string intact = ReadFile(sp);
    ASSERT_GT(intact.size(), 10u);
    WriteFile(sp, intact.substr(0, intact.size() - 7));
    TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                               TxnManager::Recover(options_));
    bool is_prefix = false;
    for (const Database& prefix : run.prefix_states) {
      if (recovered.SameState(prefix, /*compare_time=*/true)) {
        is_prefix = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix)
        << "recovery after tearing shard " << torn
        << " is not a committed prefix";
    WriteFile(sp, intact);  // restore for the next round
  }
}

TEST_F(RecoveryTest, OnDiskShardCountWinsOverConfigurationOnReopen) {
  options_.wal_shards = 3;
  LiveRun run = RunWorkload(options_, FanOutWorkload());
  TXMOD_ASSERT_OK_AND_ASSIGN(uint32_t discovered,
                             ShardedWal::DiscoverShardCount(options_.wal_path));
  EXPECT_EQ(discovered, 3u);

  // Reopen under a mismatched configuration: the on-disk count must win
  // (re-routing existing records would scramble the streams).
  options_.wal_shards = 5;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_));
  ASSERT_TRUE(recovered.SameState(run.db, /*compare_time=*/true));
  core::IntegritySubsystem ics(&recovered);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options_));
  EXPECT_EQ(manager->wal()->shard_count(), 3u);
  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(8100, \"k3\", 2.0)});").status());
  TXMOD_ASSERT_OK_AND_ASSIGN(Database after, TxnManager::Recover(options_));
  EXPECT_TRUE(after.SameState(recovered, /*compare_time=*/true));
}

TEST_F(RecoveryTest, PreShardLegacyLogIsStitchedAsThePrefixStream) {
  // Life begins unsharded: a v1 log at the legacy path.
  LiveRun run = RunWorkload(options_, DefaultWorkload());
  ASSERT_TRUE(std::filesystem::exists(options_.wal_path));

  // Reopen under a sharded configuration: the legacy file stays behind
  // as the read-only prefix stream, new commits fan out to the shards,
  // and stitched recovery reads the union in version order.
  options_.wal_shards = 2;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_));
  ASSERT_TRUE(recovered.SameState(run.db, /*compare_time=*/true));
  core::IntegritySubsystem ics(&recovered);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  TXMOD_ASSERT_OK_AND_ASSIGN(auto manager,
                             TxnManager::Create(&ics, options_));
  ASSERT_TRUE(manager->wal()->sharded());
  EXPECT_TRUE(std::filesystem::exists(options_.wal_path))
      << "adopting sharding must not discard the legacy prefix stream";
  TXMOD_ASSERT_OK(
      manager->RunText("insert(fk_rel, {(8200, \"k4\", 3.0)});").status());
  TXMOD_ASSERT_OK(
      manager
          ->RunText(
              "delete(key_rel, {(\"x1\", \"payload\")}); "
              "insert(fk_rel, {(8201, \"k5\", 1.0)});")
          .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(Database stitched, TxnManager::Recover(options_));
  EXPECT_TRUE(stitched.SameState(recovered, /*compare_time=*/true));

  // The next checkpoint covers the legacy records; Truncate removes the
  // lingering prefix stream.
  TXMOD_ASSERT_OK(manager->Checkpoint());
  EXPECT_FALSE(std::filesystem::exists(options_.wal_path));
  TXMOD_ASSERT_OK_AND_ASSIGN(Database after_ckpt,
                             TxnManager::Recover(options_));
  EXPECT_TRUE(after_ckpt.SameState(recovered, /*compare_time=*/true));
}

TEST_F(RecoveryTest, PartialFanOutIsDroppedTogetherWithEverythingAbove) {
  options_.wal_shards = 2;
  LiveRun run = RunWorkload(options_, DefaultWorkload());

  // Hand-craft the crash between the shard appends of one commit: a
  // record declaring parts=2 lands on shard 0 only. Recovery must treat
  // the version as absent (the commit was never acknowledged) and drop
  // it — plus a later complete record above it, which sits beyond the
  // contiguity cut.
  const uint64_t next_version = run.db.logical_time() + 1;
  {
    TXMOD_ASSERT_OK_AND_ASSIGN(
        WriteAheadLog shard0,
        WriteAheadLog::OpenShard(
            ShardedWal::ShardPath(options_.wal_path, 0), 0, 2));
    WalRecord partial;
    partial.version = next_version;
    partial.parts = 2;  // declares a second part that never made it
    partial.deltas.push_back(WalDelta{
        "fk_rel",
        {Tuple({Value::Int(9500), Value::String("k1"), Value::Double(1.0)})},
        {}});
    TXMOD_ASSERT_OK_AND_ASSIGN(uint64_t lsn, shard0.Append(partial));
    WalRecord above;
    above.version = next_version + 1;
    above.deltas.push_back(WalDelta{
        "fk_rel",
        {Tuple({Value::Int(9501), Value::String("k2"), Value::Double(1.0)})},
        {}});
    TXMOD_ASSERT_OK_AND_ASSIGN(lsn, shard0.Append(above));
    TXMOD_ASSERT_OK(shard0.Sync(lsn));
  }
  WalReplayStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Database recovered,
                             TxnManager::Recover(options_, &stats));
  EXPECT_TRUE(recovered.SameState(run.db, /*compare_time=*/true))
      << "a partial fan-out leaked into recovery";
  EXPECT_TRUE(stats.tail_dropped);
  EXPECT_NE(stats.tail_error.find("incomplete fan-out"), std::string::npos)
      << stats.tail_error;
}

// ---------------------------------------------------------------------------
// Poisoned-WAL contract: after any failed fsync, the log must never again
// report durability — every later Append/Sync fails, naming the original
// cause. ("fsyncgate": retrying fsync after a failure silently loses the
// pages the kernel already dropped.)
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, FailedFsyncPoisonsEveryLaterAppendAndSync) {
  FaultInjectingVfs vfs;
  TXMOD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal,
                             WriteAheadLog::Open(options_.wal_path, &vfs));
  WalRecord rec;
  rec.version = 1;
  TXMOD_ASSERT_OK_AND_ASSIGN(uint64_t lsn, wal.Append(rec));

  FaultSpec fault;
  fault.op = VfsOp::kFsync;
  fault.kind = FaultKind::kEIO;
  fault.path_substring = "wal";
  vfs.InjectFault(fault);  // one-shot: the NEXT fsync fails, later ones "work"

  const Status failed = wal.Sync(lsn);
  ASSERT_FALSE(failed.ok());
  const std::string original_cause = failed.message();
  EXPECT_NE(original_cause.find("injected"), std::string::npos);

  std::string cause;
  EXPECT_TRUE(wal.broken(&cause));
  EXPECT_EQ(cause, original_cause);

  // The fault was one-shot — the OS-level fsync would now "succeed". The
  // log must refuse anyway: those pages are gone.
  rec.version = 2;
  const Status later_append = wal.Append(rec).status();
  ASSERT_FALSE(later_append.ok());
  EXPECT_EQ(later_append.code(), StatusCode::kUnavailable);
  EXPECT_NE(later_append.message().find("poisoned"), std::string::npos);
  EXPECT_NE(later_append.message().find(original_cause), std::string::npos)
      << "the error must name the original failure, got: "
      << later_append.message();

  const Status later_sync = wal.Sync(lsn);
  ASSERT_FALSE(later_sync.ok());
  EXPECT_EQ(later_sync.code(), StatusCode::kUnavailable);
  EXPECT_NE(later_sync.message().find(original_cause), std::string::npos);

  const Status later_truncate = wal.Truncate();
  ASSERT_FALSE(later_truncate.ok());
  EXPECT_EQ(later_truncate.code(), StatusCode::kUnavailable);
}

TEST_F(RecoveryTest, FsyncGateNeverAcksAfterTheFirstFailure) {
  // The gate variant: fsync fails once, then LIES (reports success while
  // dropping writes). The poison bit must make the lie unreachable.
  FaultInjectingVfs vfs;
  TXMOD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal,
                             WriteAheadLog::Open(options_.wal_path, &vfs));
  WalRecord rec;
  rec.version = 1;
  TXMOD_ASSERT_OK_AND_ASSIGN(uint64_t lsn, wal.Append(rec));

  FaultSpec fault;
  fault.op = VfsOp::kFsync;
  fault.kind = FaultKind::kFsyncGate;
  fault.path_substring = "wal";
  vfs.InjectFault(fault);

  ASSERT_FALSE(wal.Sync(lsn).ok());
  EXPECT_LT(wal.durable_lsn(), lsn) << "a failed fsync must not advance "
                                       "durability";
  // No combination of later calls may ever report the record durable.
  EXPECT_FALSE(wal.Sync(lsn).ok());
  EXPECT_FALSE(wal.Append(rec).ok());
  EXPECT_LT(wal.durable_lsn(), lsn);
  EXPECT_TRUE(wal.broken());
}

}  // namespace
}  // namespace txmod::txn
