// Property-based tests (DESIGN.md §7): randomized transactions against a
// rule catalog covering all constraint classes, checked for the paper's
// correctness guarantees.
//
//   P1  a transaction executed through the subsystem either commits a
//       state satisfying every constraint, or leaves the database
//       unchanged (Definition 3.5 + atomicity);
//   P2  transaction modification and post-hoc checking make identical
//       accept/reject decisions and produce identical states;
//   P3  differential optimization does not change decisions or states
//       (OptC soundness, Section 5.2.1);
//   P4  parallel execution of the modified transaction matches serial
//       execution for every node count.

#include <random>
#include <sstream>

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/common/str_util.h"
#include "src/baseline/posthoc_checker.h"
#include "src/calculus/parser.h"
#include "src/core/translate.h"
#include "src/parallel/executor.h"
#include "src/relational/persist.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

namespace algebra = txmod::algebra;
namespace core = txmod::core;

// The catalog used by every property: one rule per recognized class.
const char* const kConstraints[][2] = {
    {"domain", "forall x (x in beer implies x.alcohol >= 0)"},
    {"refint",
     "forall x (x in beer implies exists y (y in brewery and "
     "x.brewery = y.name))"},
    {"exclusion",
     "forall x, y (x in beer and y in brewery implies x.name != y.city)"},
    {"capacity", "cnt(beer) <= 40"},
    {"total", "sum(beer, alcohol) <= 300"},
};

void DefineAll(core::IntegritySubsystem* ics) {
  for (const auto& [name, text] : kConstraints) {
    TXMOD_ASSERT_OK(ics->DefineConstraint(name, text));
  }
}

class Rng {
 public:
  explicit Rng(uint32_t seed) : gen_(seed) {}
  int Int(int lo, int hi) {  // inclusive
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }
  double Prob() { return std::uniform_real_distribution<>(0, 1)(gen_); }

 private:
  std::mt19937 gen_;
};

Database RandomDatabase(Rng* rng) {
  Database db = testing::MakeBeerDatabase();
  const int breweries = rng->Int(1, 6);
  for (int b = 0; b < breweries; ++b) {
    testing::AddBrewery(&db, StrCat("brew", b), StrCat("city", b), "nl");
  }
  const int beers = rng->Int(0, 20);
  for (int i = 0; i < beers; ++i) {
    testing::AddBeer(&db, StrCat("beer", i), "lager",
                     StrCat("brew", rng->Int(0, breweries - 1)),
                     rng->Int(0, 12) / 2.0);
  }
  return db;
}

// A random transaction: 1-4 statements mixing valid and violating
// inserts, deletes, and updates on both relations.
algebra::Transaction RandomTransaction(Rng* rng) {
  algebra::Transaction txn;
  const int statements = rng->Int(1, 4);
  for (int s = 0; s < statements; ++s) {
    switch (rng->Int(0, 4)) {
      case 0: {  // insert beers (sometimes orphaned or negative)
        std::vector<Tuple> tuples;
        const int n = rng->Int(1, 5);
        for (int i = 0; i < n; ++i) {
          const bool orphan = rng->Prob() < 0.25;
          const bool negative = rng->Prob() < 0.25;
          tuples.push_back(
              Tuple({Value::String(StrCat("new", rng->Int(0, 9999))),
                     Value::String("ale"),
                     Value::String(orphan ? StrCat("ghost", rng->Int(0, 99))
                                          : StrCat("brew", rng->Int(0, 5))),
                     Value::Double(negative ? -1.0 : rng->Int(0, 14) / 2.0)}));
        }
        txn.program.statements.push_back(algebra::Statement::Insert(
            "beer", algebra::RelExpr::Literal(std::move(tuples), 4)));
        break;
      }
      case 1: {  // insert a brewery (city collides with beer names rarely)
        std::vector<Tuple> tuples = {
            Tuple({Value::String(StrCat("brew", rng->Int(0, 9))),
                   Value::String(rng->Prob() < 0.15
                                     ? StrCat("beer", rng->Int(0, 19))
                                     : StrCat("city", rng->Int(0, 9))),
                   Value::String("nl")})};
        txn.program.statements.push_back(algebra::Statement::Insert(
            "brewery", algebra::RelExpr::Literal(std::move(tuples), 3)));
        break;
      }
      case 2: {  // delete beers by alcohol threshold
        txn.program.statements.push_back(algebra::Statement::Delete(
            "beer",
            algebra::RelExpr::Select(
                algebra::ScalarExpr::Binary(
                    algebra::ScalarOp::kGt,
                    algebra::ScalarExpr::Attr(0, 3, "alcohol"),
                    algebra::ScalarExpr::Const(
                        Value::Double(rng->Int(0, 12) / 2.0))),
                algebra::RelExpr::Base("beer"))));
        break;
      }
      case 3: {  // delete a brewery (may strand beers)
        txn.program.statements.push_back(algebra::Statement::Delete(
            "brewery",
            algebra::RelExpr::Select(
                algebra::ScalarExpr::Binary(
                    algebra::ScalarOp::kEq,
                    algebra::ScalarExpr::Attr(0, 0, "name"),
                    algebra::ScalarExpr::Const(
                        Value::String(StrCat("brew", rng->Int(0, 5))))),
                algebra::RelExpr::Base("brewery"))));
        break;
      }
      case 4: {  // update alcohol by a delta (may go negative)
        const double delta = (rng->Int(0, 6) - 3) / 2.0;
        txn.program.statements.push_back(algebra::Statement::Update(
            "beer",
            algebra::ScalarExpr::Binary(
                algebra::ScalarOp::kLe,
                algebra::ScalarExpr::Attr(0, 3, "alcohol"),
                algebra::ScalarExpr::Const(
                    Value::Double(rng->Int(0, 12) / 2.0))),
            {algebra::UpdateSet{
                3, "alcohol",
                algebra::ScalarExpr::Binary(
                    algebra::ScalarOp::kAdd, algebra::ScalarExpr::Attr(0, 3),
                    algebra::ScalarExpr::Const(Value::Double(delta)))}}));
        break;
      }
    }
  }
  return txn;
}

/// All constraints hold in `db` (evaluated from scratch).
bool AllConstraintsHold(Database* db) {
  for (const auto& [name, text] : kConstraints) {
    auto parsed = calculus::ParseFormula(text);
    EXPECT_TRUE(parsed.ok());
    auto analyzed = calculus::AnalyzeFormula(*parsed, db->schema());
    EXPECT_TRUE(analyzed.ok());
    auto query = core::ViolationQuery(*analyzed, db->schema());
    EXPECT_TRUE(query.ok());
    txn::TxnContext ctx(db);
    auto violations = algebra::EvaluateRelExpr(**query, ctx);
    EXPECT_TRUE(violations.ok());
    if (!violations->empty()) return false;
  }
  return true;
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, CommittedStatesSatisfyAllConstraints) {
  Rng rng(GetParam());
  Database db = RandomDatabase(&rng);
  // The random initial state may violate constraints (e.g. too many
  // beers); repair by starting enforcement from the current state — the
  // paper assumes a correct pre-transaction state, so skip seeds with
  // incorrect initial states for the commit property.
  if (!AllConstraintsHold(&db)) GTEST_SKIP();
  core::IntegritySubsystem ics(&db);
  DefineAll(&ics);
  for (int round = 0; round < 10; ++round) {
    Database before = db.Clone();
    algebra::Transaction txn = RandomTransaction(&rng);
    auto result = ics.Execute(txn);
    TXMOD_ASSERT_OK(result.status());
    if (result->committed) {
      EXPECT_TRUE(AllConstraintsHold(&db)) << "seed " << GetParam()
                                           << " round " << round;
    } else {
      EXPECT_TRUE(db.SameState(before)) << "abort must restore the state";
    }
  }
}

TEST_P(PropertyTest, ModificationAgreesWithPostHocChecking) {
  Rng rng(GetParam() + 1000);
  Database db0 = RandomDatabase(&rng);
  if (!AllConstraintsHold(&db0)) GTEST_SKIP();

  Database tm_db = db0.Clone();
  core::IntegritySubsystem tm(&tm_db);
  DefineAll(&tm);
  Database ph_db = db0.Clone();
  core::IntegritySubsystem ph(&ph_db);
  DefineAll(&ph);
  baseline::PostHocChecker checker(&ph);

  for (int round = 0; round < 10; ++round) {
    algebra::Transaction txn = RandomTransaction(&rng);
    auto tm_r = tm.Execute(txn);
    auto ph_r = checker.Execute(txn);
    TXMOD_ASSERT_OK(tm_r.status());
    TXMOD_ASSERT_OK(ph_r.status());
    EXPECT_EQ(tm_r->committed, ph_r->committed)
        << "seed " << GetParam() << " round " << round;
    EXPECT_TRUE(tm_db.SameState(ph_db));
  }
}

TEST_P(PropertyTest, DifferentialAgreesWithFullChecking) {
  Rng rng(GetParam() + 2000);
  Database db0 = RandomDatabase(&rng);
  if (!AllConstraintsHold(&db0)) GTEST_SKIP();

  Database diff_db = db0.Clone();
  core::IntegritySubsystem diff_ics(&diff_db);
  DefineAll(&diff_ics);

  Database full_db = db0.Clone();
  core::SubsystemOptions full_options;
  full_options.optimization = core::OptimizationLevel::kNone;
  core::IntegritySubsystem full_ics(&full_db, full_options);
  DefineAll(&full_ics);

  for (int round = 0; round < 10; ++round) {
    algebra::Transaction txn = RandomTransaction(&rng);
    auto diff_r = diff_ics.Execute(txn);
    auto full_r = full_ics.Execute(txn);
    TXMOD_ASSERT_OK(diff_r.status());
    TXMOD_ASSERT_OK(full_r.status());
    EXPECT_EQ(diff_r->committed, full_r->committed)
        << "seed " << GetParam() << " round " << round
        << " txn:\n" << txn.ToString();
    EXPECT_TRUE(diff_db.SameState(full_db));
  }
}

TEST_P(PropertyTest, ParallelExecutionMatchesSerial) {
  Rng rng(GetParam() + 3000);
  Database db0 = RandomDatabase(&rng);
  core::IntegritySubsystem ics(&db0);
  DefineAll(&ics);
  const std::map<std::string, parallel::FragmentationScheme> schemes = {
      {"beer", parallel::FragmentationScheme{
                   parallel::FragmentationKind::kHash, 2}},
      {"brewery", parallel::FragmentationScheme{
                      parallel::FragmentationKind::kHash, 0}},
  };
  for (int round = 0; round < 5; ++round) {
    algebra::Transaction txn = RandomTransaction(&rng);
    auto modified = ics.Modify(txn);
    TXMOD_ASSERT_OK(modified.status());

    Database serial_db = db0.Clone();
    auto serial = txn::ExecuteTransaction(*modified, &serial_db);
    TXMOD_ASSERT_OK(serial.status());

    for (int nodes : {2, 5}) {
      auto pdb = parallel::ParallelDatabase::Partition(db0, schemes, nodes);
      TXMOD_ASSERT_OK(pdb.status());
      parallel::ParallelExecutor exec(&*pdb, parallel::ParallelOptions{});
      auto par = exec.Execute(*modified);
      TXMOD_ASSERT_OK(par.status());
      EXPECT_EQ(serial->committed, par->committed)
          << "seed " << GetParam() << " round " << round << " nodes "
          << nodes;
      EXPECT_TRUE(pdb->Merge().SameState(serial_db));
    }
    // Advance the base state with the serial outcome for the next round.
    db0 = std::move(serial_db);
  }
}

TEST_P(PropertyTest, PeepholeFormsAreEquiEmpty) {
  // P5: the Table-1 peephole rewrites (π-difference / π-intersection) are
  // empty exactly when the general antijoin/semijoin/join forms are, on
  // arbitrary database states — including states that violate other
  // constraints.
  Rng rng(GetParam() + 4000);
  Database db = RandomDatabase(&rng);
  core::TranslateOptions with, without;
  with.table1_peepholes = true;
  without.table1_peepholes = false;
  for (const auto& [name, text] : kConstraints) {
    auto parsed = calculus::ParseFormula(text);
    TXMOD_ASSERT_OK(parsed.status());
    auto analyzed = calculus::AnalyzeFormula(*parsed, db.schema());
    TXMOD_ASSERT_OK(analyzed.status());
    auto q1 = core::ViolationQuery(*analyzed, db.schema(), with);
    auto q2 = core::ViolationQuery(*analyzed, db.schema(), without);
    TXMOD_ASSERT_OK(q1.status());
    TXMOD_ASSERT_OK(q2.status());
    txn::TxnContext ctx(&db);
    auto v1 = algebra::EvaluateRelExpr(**q1, ctx);
    auto v2 = algebra::EvaluateRelExpr(**q2, ctx);
    TXMOD_ASSERT_OK(v1.status());
    TXMOD_ASSERT_OK(v2.status());
    EXPECT_EQ(v1->empty(), v2->empty())
        << name << " seed " << GetParam() << "\n  with:    "
        << (*q1)->ToString() << "\n  without: " << (*q2)->ToString();
  }
}

TEST_P(PropertyTest, CheckpointRoundTripPreservesEnforcement) {
  // P6: saving and restoring a checkpoint preserves both the state and
  // the subsystem's decisions on subsequent transactions.
  Rng rng(GetParam() + 5000);
  Database db = RandomDatabase(&rng);
  std::ostringstream out;
  TXMOD_ASSERT_OK(SaveDatabase(db, out));
  std::istringstream in(out.str());
  TXMOD_ASSERT_OK_AND_ASSIGN(Database restored, LoadDatabase(in));
  ASSERT_TRUE(restored.SameState(db));

  core::IntegritySubsystem ics1(&db);
  DefineAll(&ics1);
  core::IntegritySubsystem ics2(&restored);
  DefineAll(&ics2);
  for (int round = 0; round < 5; ++round) {
    algebra::Transaction txn = RandomTransaction(&rng);
    auto r1 = ics1.Execute(txn);
    auto r2 = ics2.Execute(txn);
    TXMOD_ASSERT_OK(r1.status());
    TXMOD_ASSERT_OK(r2.status());
    EXPECT_EQ(r1->committed, r2->committed);
    EXPECT_TRUE(db.SameState(restored));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace txmod
