// The text value codec (EncodeValueText / DecodeValueText /
// SplitEncodedValues) under exhaustive round-trip pressure and hostile
// input: randomized strings with quotes/backslashes/escape-at-the-end,
// extreme int64 and double values, and the corruption pins for the
// silent-acceptance bugs (trailing garbage after `i:`/`d:` payloads,
// out-of-range ints saturating instead of failing) that this suite
// exists to keep fixed — every encoding on disk decodes to exactly the
// value that was written, or loading fails loudly.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/relational/persist.h"
#include "src/relational/value.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

void ExpectRoundTrip(const Value& v) {
  const std::string encoded = EncodeValueText(v);
  TXMOD_ASSERT_OK_AND_ASSIGN(const Value decoded, DecodeValueText(encoded));
  if (v.is_double() && std::isnan(v.as_double())) {
    ASSERT_TRUE(decoded.is_double());
    EXPECT_TRUE(std::isnan(decoded.as_double())) << encoded;
  } else {
    EXPECT_EQ(decoded, v) << encoded;
  }
  // The encoding must also survive the line tokenizer intact.
  const std::vector<std::string> split = SplitEncodedValues(encoded);
  ASSERT_EQ(split.size(), 1u) << encoded;
  EXPECT_EQ(split[0], encoded);
}

TEST(ValueCodecTest, ExtremeIntsRoundTrip) {
  for (const int64_t v :
       {int64_t{0}, int64_t{1}, int64_t{-1},
        std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max() - 1,
        std::numeric_limits<int64_t>::min() + 1}) {
    ExpectRoundTrip(Value::Int(v));
  }
}

TEST(ValueCodecTest, ExtremeDoublesRoundTrip) {
  for (const double v :
       {0.0, -0.0, 1.5, -3.25, std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::min(),          // smallest normal
        std::numeric_limits<double>::denorm_min(),   // deepest denormal
        std::numeric_limits<double>::epsilon(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    ExpectRoundTrip(Value::Double(v));
  }
}

TEST(ValueCodecTest, HostileStringsRoundTrip) {
  for (const std::string& s :
       {std::string(), std::string("plain"), std::string("with \"quotes\""),
        std::string("back\\slash"), std::string("trailing backslash\\"),
        std::string("trailing quote\""), std::string("\\"),
        std::string("\""), std::string("\\\""), std::string("\n\t\r"),
        std::string("null"), std::string("i:42"), std::string("d:1.5"),
        std::string(3, '\0'), std::string("sp ace  s")}) {
    ExpectRoundTrip(Value::String(s));
  }
  ExpectRoundTrip(Value::Null());
}

TEST(ValueCodecTest, RandomizedValuesRoundTrip) {
  std::mt19937_64 rng(0xC0DEC);
  for (int iter = 0; iter < 2000; ++iter) {
    switch (rng() % 4) {
      case 0:
        ExpectRoundTrip(Value::Int(static_cast<int64_t>(rng())));
        break;
      case 1: {
        // Random bit pattern: hits denormals, huge exponents, NaNs.
        const uint64_t bits = rng();
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        std::memcpy(&d, &bits, sizeof(d));
        ExpectRoundTrip(Value::Double(d));
        break;
      }
      case 2: {
        std::string s;
        const std::size_t len = rng() % 40;
        for (std::size_t i = 0; i < len; ++i) {
          // Bias toward the codec's special characters.
          switch (rng() % 6) {
            case 0: s.push_back('"'); break;
            case 1: s.push_back('\\'); break;
            case 2: s.push_back(' '); break;
            default: s.push_back(static_cast<char>(rng() % 256)); break;
          }
        }
        ExpectRoundTrip(Value::String(s));
        break;
      }
      default:
        ExpectRoundTrip(Value::Null());
        break;
    }
  }
}

// The bug this PR fixes: "i:12junk" decoded as Int(12) and
// "i:9223372036854775808" decoded as Int(INT64_MAX) — checkpoint/WAL
// corruption silently loaded as different data.
TEST(ValueCodecTest, TrailingGarbageIsRejected) {
  for (const std::string& text :
       {std::string("i:12junk"), std::string("i:1 "), std::string("i: 1"),
        std::string("i:"), std::string("i:+"), std::string("i:0x10"),
        std::string("d:1.5junk"), std::string("d:1.5 "), std::string("d:"),
        std::string("d:.")}) {
    auto decoded = DecodeValueText(text);
    ASSERT_FALSE(decoded.ok()) << text << " decoded as a value";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(ValueCodecTest, OutOfRangeIntsAreRejectedNotSaturated) {
  for (const std::string& text :
       {std::string("i:9223372036854775808"),
        std::string("i:-9223372036854775809"),
        std::string("i:99999999999999999999999")}) {
    auto decoded = DecodeValueText(text);
    ASSERT_FALSE(decoded.ok()) << text << " decoded as a value";
    EXPECT_NE(decoded.status().message().find("out of range"),
              std::string::npos)
        << decoded.status().ToString();
  }
  // The boundary values themselves decode.
  TXMOD_ASSERT_OK_AND_ASSIGN(const Value max,
                             DecodeValueText("i:9223372036854775807"));
  EXPECT_EQ(max.as_int(), std::numeric_limits<int64_t>::max());
  TXMOD_ASSERT_OK_AND_ASSIGN(const Value min,
                             DecodeValueText("i:-9223372036854775808"));
  EXPECT_EQ(min.as_int(), std::numeric_limits<int64_t>::min());
}

TEST(ValueCodecTest, OutOfRangeDoublesAreRejectedButDenormalsDecode) {
  EXPECT_FALSE(DecodeValueText("d:1e999").ok());
  EXPECT_FALSE(DecodeValueText("d:-1e999").ok());
  // Underflow (ERANGE with a representable result) must keep decoding:
  // %a-encoded denormals land here on some libcs.
  TXMOD_ASSERT_OK_AND_ASSIGN(const Value tiny, DecodeValueText("d:1e-400"));
  ASSERT_TRUE(tiny.is_double());
  // Infinity is a legitimate double value with a round-trippable text
  // form (strtod parses "inf") — only the ERANGE saturation is an error.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      const Value inf, DecodeValueText(EncodeValueText(Value::Double(
                           std::numeric_limits<double>::infinity()))));
  EXPECT_EQ(inf.as_double(), std::numeric_limits<double>::infinity());
}

TEST(ValueCodecTest, RandomBytesNeverCrashTheDecoder) {
  std::mt19937 rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    const std::size_t len = rng() % 30;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng() % 256));
    }
    // Either a value or a clean error; never a crash or a hang.
    (void)DecodeValueText(text);
    (void)SplitEncodedValues(text);
  }
}

}  // namespace
}  // namespace txmod
