// Unit coverage of the parallel runtime's building blocks: the persistent
// ThreadPool (phase queues, followers-after-queues ordering, caller
// participation, env-sized defaults), the ExchangeQueue (MPSC batch
// transfer, drain protocol, liveness-gated bound), and the
// morsel-granular NodeLocalKernel (morselized execution must equal
// whole-fragment ExecuteNodeLocal). The end-to-end determinism story —
// threaded == simulate == serial — lives in serial_parallel_oracle_test.

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/algebra/physical_plan.h"
#include "src/common/str_util.h"
#include "src/parallel/thread_pool.h"
#include "tests/test_util.h"

namespace txmod::parallel {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryQueueTaskAndFollower) {
  ThreadPool pool(3);
  std::atomic<int> tasks_run{0};
  std::atomic<int> tasks_at_first_follower{-1};
  PhasePlan plan;
  plan.queues.resize(4);
  for (std::size_t s = 0; s < 4; ++s) {
    for (int m = 0; m < 8; ++m) {
      plan.queues[s].push_back([&tasks_run] { ++tasks_run; });
    }
  }
  // Followers run only after every queue task has been *dequeued*; with
  // this plan's trivial tasks they have also finished, so the follower
  // observes the full count.
  plan.followers.push_back([&] {
    int expected = -1;
    tasks_at_first_follower.compare_exchange_strong(expected,
                                                    tasks_run.load());
  });
  pool.Run(std::move(plan));
  EXPECT_EQ(tasks_run.load(), 32);
  EXPECT_EQ(tasks_at_first_follower.load(), 32);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  PhasePlan plan;
  plan.queues.resize(2);
  for (std::size_t s = 0; s < 2; ++s) {
    plan.queues[s].push_back(
        [&seen] { seen.push_back(std::this_thread::get_id()); });
  }
  plan.followers.push_back(
      [&seen] { seen.push_back(std::this_thread::get_id()); });
  pool.Run(std::move(plan));
  ASSERT_EQ(seen.size(), 3u);
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, StealingDrainsImbalancedQueuesForAnySeed) {
  ThreadPool pool(4);
  for (uint64_t seed : {0ull, 1ull, 7ull, 424243ull}) {
    std::atomic<int> sum{0};
    PhasePlan plan;
    plan.steal_seed = seed;
    // All work piled on one shard's queue: every other participant can
    // make progress only by stealing.
    plan.queues.resize(5);
    for (int m = 1; m <= 100; ++m) {
      plan.queues[0].push_back([&sum, m] { sum += m; });
    }
    pool.Run(std::move(plan));
    EXPECT_EQ(sum.load(), 5050) << "seed " << seed;
  }
}

TEST(ThreadPoolTest, SequentialRunsReuseTheSamePool) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    PhasePlan plan;
    plan.queues.resize(3);
    for (std::size_t s = 0; s < 3; ++s) {
      plan.queues[s].push_back([&count] { ++count; });
    }
    pool.Run(std::move(plan));
    ASSERT_EQ(count.load(), 3) << "round " << round;
  }
}

TEST(ThreadPoolTest, DefaultWorkerCountHonorsEnvOverride) {
  ::setenv("TXMOD_PARALLEL_WORKERS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultWorkerCount(), 3u);
  ::setenv("TXMOD_PARALLEL_WORKERS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
  ::unsetenv("TXMOD_PARALLEL_WORKERS");
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
}

// ---------------------------------------------------------------------------
// ExchangeQueue.
// ---------------------------------------------------------------------------

std::vector<Tuple> IntBatch(int lo, int hi) {
  std::vector<Tuple> batch;
  for (int i = lo; i < hi; ++i) batch.push_back(Tuple({Value::Int(i)}));
  return batch;
}

TEST(ExchangeQueueTest, TransfersEveryBatchFromManyProducers) {
  const std::size_t kProducers = 4;
  ExchangeQueue q(/*capacity_batches=*/2, kProducers);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int b = 0; b < 10; ++b) {
        const int base = static_cast<int>(p) * 1000 + b * 10;
        q.Push(IntBatch(base, base + 10));
      }
      q.ProducerDone();
    });
  }
  std::set<int64_t> received;
  std::vector<Tuple> batch;
  while (q.Pop(&batch)) {
    for (const Tuple& t : batch) received.insert(t.at(0).as_int());
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(received.size(), kProducers * 100);
  EXPECT_EQ(q.batches(), kProducers * 10);
}

TEST(ExchangeQueueTest, PopReturnsFalseOnceProducersAreDone) {
  ExchangeQueue q(/*capacity_batches=*/4, /*producers=*/1);
  q.Push(IntBatch(0, 3));
  q.ProducerDone();
  std::vector<Tuple> batch;
  ASSERT_TRUE(q.Pop(&batch));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_FALSE(q.Pop(&batch));
}

TEST(ExchangeQueueTest, BoundIsSoftUntilConsumerIsLive) {
  // Before the first Pop there is no guarantee any thread will ever
  // drain the queue, so Push must not block on the capacity bound — a
  // narrow pool's only thread may be mid-producer-task. Five pushes
  // through a capacity-1 queue on a single thread would deadlock under a
  // hard bound; under the soft bound they complete immediately.
  ExchangeQueue q(/*capacity_batches=*/1, /*producers=*/1);
  for (int b = 0; b < 5; ++b) q.Push(IntBatch(b, b + 1));
  q.ProducerDone();
  std::vector<Tuple> batch;
  int popped = 0;
  while (q.Pop(&batch)) ++popped;
  EXPECT_EQ(popped, 5);
  EXPECT_EQ(q.batches(), 5u);
}

// ---------------------------------------------------------------------------
// NodeLocalKernel: morselized execution == whole-fragment execution.
// ---------------------------------------------------------------------------

/// Runs `node` over `left` (and `right`) once via ExecuteNodeLocal and
/// once morselized through NodeLocalKernel with the given morsel size;
/// both result sets must be identical.
void ExpectMorselsMatchWholeFragment(const algebra::PhysicalNode& node,
                                     const Relation& left,
                                     const Relation* right,
                                     std::size_t morsel_tuples) {
  SCOPED_TRACE(StrCat("morsel_tuples=", morsel_tuples));
  algebra::EvalStats whole_stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Relation whole,
      algebra::ExecuteNodeLocal(node, left, right, &whole_stats));

  algebra::EvalStats kernel_stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      algebra::NodeLocalKernel kernel,
      algebra::NodeLocalKernel::Prepare(node, left.schema_ptr(), right,
                                        &kernel_stats));
  std::vector<const Tuple*> input;
  for (const Tuple& t : left) input.push_back(&t);
  Relation merged(kernel.output_schema());
  for (std::size_t off = 0; off < input.size(); off += morsel_tuples) {
    const std::size_t count = std::min(morsel_tuples, input.size() - off);
    std::vector<Tuple> out;
    TXMOD_ASSERT_OK(
        kernel.RunMorsel(input.data() + off, count, &out, &kernel_stats));
    for (Tuple& t : out) merged.Insert(std::move(t));
  }
  EXPECT_EQ(merged.size(), whole.size());
  for (const Tuple& t : whole) {
    EXPECT_TRUE(merged.Contains(t)) << "missing from morselized result";
  }
}

class NodeLocalKernelTest : public ::testing::Test {
 protected:
  NodeLocalKernelTest() : db_(MakeBeerDatabase()), parser_(&db_.schema()) {
    AddBrewery(&db_, "heineken", "amsterdam", "nl");
    AddBrewery(&db_, "guinness", "dublin", "ie");
    for (int i = 0; i < 23; ++i) {
      AddBeer(&db_, StrCat("beer", i), "lager",
              i % 2 == 0 ? "heineken" : "guinness", 3.0 + (i % 7));
    }
  }

  /// Compiles `expr` and returns its root node (kept alive in plans_),
  /// or nullptr on a parse/compile failure (already reported to gtest).
  const algebra::PhysicalNode* Root(const std::string& expr) {
    auto txn = parser_.ParseTransaction(StrCat("tmp := ", expr, ";"));
    if (!txn.ok()) {
      ADD_FAILURE() << txn.status().ToString();
      return nullptr;
    }
    auto plan = algebra::PhysicalPlan::Compile(
        *txn->program.statements[0].expr);
    if (!plan.ok()) {
      ADD_FAILURE() << plan.status().ToString();
      return nullptr;
    }
    exprs_.push_back(std::move(txn->program.statements[0].expr));
    plans_.push_back(
        std::make_unique<algebra::PhysicalPlan>(std::move(plan).value()));
    return &plans_.back()->root();
  }

  const Relation& Rel(const std::string& name) { return **db_.Find(name); }

  Database db_;
  algebra::AlgebraParser parser_;
  std::vector<algebra::RelExprPtr> exprs_;
  std::vector<std::unique_ptr<algebra::PhysicalPlan>> plans_;
};

TEST_F(NodeLocalKernelTest, SelectMatchesForEveryMorselSize) {
  const algebra::PhysicalNode* n = Root("select[alcohol > 5](beer)");
  ASSERT_NE(n, nullptr);
  for (std::size_t m : {1u, 3u, 7u, 100u}) {
    ExpectMorselsMatchWholeFragment(*n, Rel("beer"), nullptr, m);
  }
}

TEST_F(NodeLocalKernelTest, ProjectMatches) {
  const algebra::PhysicalNode* n = Root("project[name, alcohol](beer)");
  ASSERT_NE(n, nullptr);
  ExpectMorselsMatchWholeFragment(*n, Rel("beer"), nullptr, 4);
}

TEST_F(NodeLocalKernelTest, HashJoinBuildsOncePerFragment) {
  const algebra::PhysicalNode* n =
      Root("join[l.brewery = r.name](beer, brewery)");
  ASSERT_NE(n, nullptr);
  ASSERT_FALSE(n->right_keys.empty()) << "expected an equality join";
  ExpectMorselsMatchWholeFragment(*n, Rel("beer"), &Rel("brewery"), 5);
}

}  // namespace
}  // namespace txmod::parallel
