#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/calculus/parser.h"
#include "src/core/translate.h"
#include "src/txn/executor.h"
#include "tests/test_util.h"

namespace txmod::core {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class TranslateTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  Result<calculus::AnalyzedFormula> Analyze(const std::string& text) {
    TXMOD_ASSIGN_OR_RETURN(calculus::Formula f, calculus::ParseFormula(text));
    return calculus::AnalyzeFormula(f, db_.schema());
  }

  /// Renders the violation query of `constraint`.
  std::string Violation(const std::string& constraint) {
    auto analyzed = Analyze(constraint);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    if (!analyzed.ok()) return "";
    auto q = ViolationQuery(*analyzed, db_.schema());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.ok() ? (*q)->ToString() : "";
  }

  /// True when the constraint currently holds in db_ (violation query
  /// evaluates empty inside a transaction context).
  bool Holds(const std::string& constraint) {
    auto analyzed = Analyze(constraint);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    auto q = ViolationQuery(*analyzed, db_.schema());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    txn::TxnContext ctx(&db_);
    auto rel = algebra::EvaluateRelExpr(**q, ctx);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return rel->empty();
  }
};

// --- Table 1, row by row -----------------------------------------------------

TEST_F(TranslateTest, Table1Row1_UniversalCondition) {
  // (∀x)(x ∈ R ⇒ c(x))  →  alarm(σ_{¬c'}(R))
  EXPECT_EQ(Violation("forall x (x in beer implies x.alcohol >= 0)"),
            "select[not alcohol >= 0](beer)");
}

TEST_F(TranslateTest, Table1Row2_ReferentialIntegrity) {
  // (∀x)(x∈R ⇒ (∃y)(y∈S ∧ x.i = y.j))  →  alarm(π_i(R) − π_j(S))
  EXPECT_EQ(Violation("forall x (x in beer implies exists y (y in brewery "
                      "and x.brewery = y.name))"),
            "diff(project[brewery](beer), project[name](brewery))");
}

TEST_F(TranslateTest, Table1Row3_Exclusion) {
  // (∀x)(x∈R ⇒ (∀y)(y∈S ⇒ x.i ≠ y.j))  →  alarm(π_i(R) ∩ π_j(S))
  EXPECT_EQ(Violation("forall x (x in beer implies forall y (y in brewery "
                      "implies x.name != y.name))"),
            "intersect(project[name](beer), project[name](brewery))");
}

TEST_F(TranslateTest, Table1Row4_PairCondition) {
  // (∀x,y)((x∈R ∧ y∈S ∧ c1(x,y)) ⇒ c2(x,y))
  //   →  alarm(σ_{¬c2'}(R ⋈_{c1'} S))
  EXPECT_EQ(
      Violation("forall x, y ((x in beer and y in brewery and "
                "x.brewery = y.name) implies x.alcohol >= 1)"),
      "select[not alcohol >= 1](join[l.brewery = r.name](beer, brewery))");
}

TEST_F(TranslateTest, Table1Row5_ExistentialCondition) {
  // (∃x)(x∈R ∧ c(x))  →  alarm(σ_{cnt=0}(CNT(σ_{c'}(R))))
  EXPECT_EQ(Violation("exists x (x in brewery and x.country = \"nl\")"),
            "select[cnt = 0](cnt(select[country = \"nl\"](brewery)))");
}

TEST_F(TranslateTest, Table1Row6_AggregateCondition) {
  // c(AGGR(R, i))  →  alarm(σ_{¬c'}(AGGR(R, i)))
  EXPECT_EQ(Violation("sum(beer, alcohol) <= 100"),
            "select[not sum(beer, alcohol) <= 100](sum[#3](beer))");
}

TEST_F(TranslateTest, Table1Row7_CountCondition) {
  // c(CNT(R))  →  alarm(σ_{¬c'}(CNT(R)))
  EXPECT_EQ(Violation("cnt(beer) <= 1000"),
            "select[not cnt(beer) <= 1000](cnt(beer))");
}

// --- semantic checks: the violation query is non-empty iff violated --------

TEST_F(TranslateTest, DomainConstraintSemantics) {
  AddBeer(&db_, "good", "ale", "x", 5.0);
  EXPECT_TRUE(Holds("forall x (x in beer implies x.alcohol >= 0)"));
  AddBeer(&db_, "bad", "ale", "x", -1.0);
  EXPECT_FALSE(Holds("forall x (x in beer implies x.alcohol >= 0)"));
}

TEST_F(TranslateTest, ReferentialConstraintSemantics) {
  const std::string c =
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))";
  EXPECT_TRUE(Holds(c));  // vacuously: no beer
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "orphan", "lager", "nowhere", 5.0);
  EXPECT_FALSE(Holds(c));
}

TEST_F(TranslateTest, ExclusionConstraintSemantics) {
  const std::string c =
      "forall x (x in beer implies forall y (y in brewery implies "
      "x.name != y.name))";
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "heineken", "lager", "heineken", 5.0);  // name collision
  EXPECT_FALSE(Holds(c));
}

TEST_F(TranslateTest, ExistentialConstraintSemantics) {
  const std::string c = "exists x (x in brewery and x.country = \"nl\")";
  EXPECT_FALSE(Holds(c));  // no witness yet
  AddBrewery(&db_, "guinness", "dublin", "ie");
  EXPECT_FALSE(Holds(c));
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  EXPECT_TRUE(Holds(c));
}

TEST_F(TranslateTest, AggregateConstraintSemantics) {
  const std::string c = "sum(beer, alcohol) <= 10";
  EXPECT_TRUE(Holds(c));  // SUM over empty = 0
  AddBeer(&db_, "a", "t", "b", 6.0);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "b", "t", "b", 5.0);
  EXPECT_FALSE(Holds(c));  // 11 > 10
}

TEST_F(TranslateTest, CountConstraintSemantics) {
  const std::string c = "cnt(beer) <= 1";
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "a", "t", "b", 1.0);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "b", "t", "b", 2.0);
  EXPECT_FALSE(Holds(c));
}

TEST_F(TranslateTest, ConjunctionOfClosedConstraints) {
  // cnt(beer) <= 1 AND cnt(brewery) <= 1: violated when either is.
  const std::string c = "cnt(beer) <= 1 and cnt(brewery) <= 1";
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "a", "t", "b", 1.0);
  AddBeer(&db_, "b", "t", "b", 2.0);
  EXPECT_FALSE(Holds(c));
}

TEST_F(TranslateTest, DisjunctionOfClosedConstraints) {
  const std::string c = "cnt(beer) <= 1 or cnt(brewery) <= 1";
  AddBeer(&db_, "a", "t", "b", 1.0);
  AddBeer(&db_, "b", "t", "b", 2.0);
  EXPECT_TRUE(Holds(c));  // brewery side still satisfied
  AddBrewery(&db_, "x", "y", "z");
  AddBrewery(&db_, "x2", "y", "z");
  EXPECT_FALSE(Holds(c));  // both violated
}

TEST_F(TranslateTest, TransitionConstraintUsesOldState) {
  // Grow-only relation: every old brewery must still exist.
  const std::string c =
      "forall x (x in old(brewery) implies exists y (y in brewery and "
      "x = y))";
  AddBrewery(&db_, "heineken", "amsterdam", "nl");

  auto analyzed = Analyze(c);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  TXMOD_ASSERT_OK_AND_ASSIGN(algebra::RelExprPtr q,
                             ViolationQuery(*analyzed, db_.schema()));

  txn::TxnContext ctx(&db_);
  // Before any change: old == current, no violation.
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v0, algebra::EvaluateRelExpr(*q, ctx));
  EXPECT_TRUE(v0.empty());
  // Delete a brewery inside the transaction: transition violated.
  TXMOD_ASSERT_OK(ctx.DeleteTuple("brewery",
                                  Tuple({Value::String("heineken"),
                                         Value::String("amsterdam"),
                                         Value::String("nl")}))
                      .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(Relation v1, algebra::EvaluateRelExpr(*q, ctx));
  EXPECT_FALSE(v1.empty());
}

TEST_F(TranslateTest, AggregateInOpenMatrix) {
  // Aggregate compared against tuple attributes (outside Table 1's simple
  // rows): every beer must be at most 2 above the average.
  const std::string c =
      "forall x (x in beer implies x.alcohol <= avg(beer, alcohol) + 2)";
  AddBeer(&db_, "a", "t", "b", 5.0);
  AddBeer(&db_, "b", "t", "b", 5.5);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "strong", "t", "b", 12.0);  // avg 7.5, 12 > 9.5
  EXPECT_FALSE(Holds(c));
}

TEST_F(TranslateTest, TupleEqualityTranslation) {
  // Containment via tuple equality (see analyzer docs).
  const std::string c =
      "forall x (x in beer implies exists y (y in beer and x = y))";
  AddBeer(&db_, "a", "t", "b", 1.0);
  EXPECT_TRUE(Holds(c));
}

TEST_F(TranslateTest, CorrelatedInequalityJoin) {
  // Non-equi correlation: nobody may strictly dominate pils.
  const std::string c =
      "forall x (x in beer implies not (exists y (y in beer and "
      "y.alcohol > x.alcohol + 5)))";
  AddBeer(&db_, "pils", "lager", "h", 5.0);
  EXPECT_TRUE(Holds(c));
  AddBeer(&db_, "spirit", "bock", "h", 11.0);
  EXPECT_FALSE(Holds(c));
}

// --- errors: out-of-fragment constructs are reported, never mistranslated --

TEST_F(TranslateTest, UnsafeInnerQuantificationFails) {
  // y's membership is buried under a disjunction with no range.
  auto analyzed = Analyze(
      "forall x (x in beer implies x.alcohol >= 0 or "
      "exists y (y.alcohol > 0 and y in beer))");
  // The analyzer itself may accept (y has a membership), but deeper
  // correlation limits are reported by the translator. Either layer may
  // reject; what matters is that no wrong program is produced.
  if (analyzed.ok()) {
    auto q = ViolationQuery(*analyzed, db_.schema());
    // exists y (... and y in beer): range is found (conjunct order is
    // irrelevant), so this particular formula actually translates.
    EXPECT_TRUE(q.ok()) << q.status().ToString();
  }
}

TEST_F(TranslateTest, CorrelationDepthLimitIsReported) {
  // z (innermost) correlates with x (outermost): depth 2, unsupported.
  auto analyzed = Analyze(
      "forall x (x in beer implies exists y (y in brewery and "
      "exists z (z in beer and z.brewery = y.name and "
      "z.alcohol > x.alcohol)))");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  auto q = ViolationQuery(*analyzed, db_.schema());
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnimplemented);
}

TEST_F(TranslateTest, AggregateInsideInnerQuantifierIsReported) {
  auto analyzed = Analyze(
      "forall x (x in beer implies exists y (y in beer and "
      "y.alcohol = max(beer, alcohol)))");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  auto q = ViolationQuery(*analyzed, db_.schema());
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnimplemented);
}

// --- TransC / TransR ---------------------------------------------------------

TEST_F(TranslateTest, TransCBuildsAlarmProgram) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      auto analyzed,
      Analyze("forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      algebra::Program p, TransC(analyzed, db_.schema(), "rule broken"));
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0].kind, algebra::StatementKind::kAlarm);
  EXPECT_EQ(p.statements[0].message, "rule broken");
  EXPECT_TRUE(p.non_triggering);
}

TEST_F(TranslateTest, Table1PeepholesCanBeDisabled) {
  TranslateOptions options;
  options.table1_peepholes = false;
  TXMOD_ASSERT_OK_AND_ASSIGN(
      auto analyzed,
      Analyze("forall x (x in beer implies exists y (y in brewery and "
              "x.brewery = y.name))"));
  TXMOD_ASSERT_OK_AND_ASSIGN(algebra::RelExprPtr q,
                             ViolationQuery(analyzed, db_.schema(), options));
  // General form: an antijoin keeping whole violating tuples.
  EXPECT_EQ(q->ToString(),
            "antijoin[l.brewery = r.name](beer, brewery)");
}

}  // namespace
}  // namespace txmod::core
