// The live network service over loopback TCP: full-protocol round
// trips, session-state misuse, the >= 4 concurrent-client oracle (every
// acked commit survives server shutdown + WAL recovery), deterministic
// admission-control backpressure via the run-probe seam, oversized-frame
// rejection, and degraded-mode surfacing. Registered as a threaded test
// (TSan covers it in CI).

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/common/vfs.h"
#include "src/core/subsystem.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/relational/persist.h"
#include "src/txn/txn_manager.h"
#include "tests/test_util.h"

namespace txmod::net {
namespace {

using txn::TxnManager;
using txn::TxnManagerOptions;

constexpr int kKeys = 16;

// `amount` is spelled by the caller ("2.0", not 2.0): the algebra lexer
// types literals syntactically, and StrCat would print 2.0 as "2".
std::string InsertFkText(int id, int key, const std::string& amount) {
  return StrCat("insert(fk_rel, {(", id, ", \"k", key, "\", ", amount,
                ")});");
}

/// Everything one live server test needs: scratch dir, constrained
/// database, durable TxnManager, started Server.
struct ServerFixture {
  std::filesystem::path dir;
  Database db;
  std::unique_ptr<core::IntegritySubsystem> ics;
  std::unique_ptr<TxnManager> manager;
  std::unique_ptr<Server> server;
  TxnManagerOptions txn_options;

  explicit ServerFixture(ServerOptions server_options = {},
                         TxnManagerOptions txn_opts = {}) {
    // gtest ASSERTs require a void-returning frame; constructors are not.
    Init(std::move(server_options), std::move(txn_opts));
  }

  void Init(ServerOptions server_options, TxnManagerOptions txn_opts) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir = std::filesystem::temp_directory_path() /
          StrCat("txmod_net_", ::getpid(), "_", info->name());
    std::filesystem::create_directories(dir);
    txn_options = std::move(txn_opts);
    txn_options.wal_path = (dir / "wal.log").string();
    txn_options.checkpoint_path = (dir / "checkpoint.db").string();
    db = bench::MakeKeyFkDatabase(kKeys, 32);
    bench::AddUnreferencedKeys(&db, 8);
    ics = std::make_unique<core::IntegritySubsystem>(&db);
    TXMOD_ASSERT_OK(
        ics->DefineConstraint("domain", bench::DomainConstraint()));
    TXMOD_ASSERT_OK(
        ics->DefineConstraint("refint", bench::RefIntConstraint()));
    TXMOD_ASSERT_OK_AND_ASSIGN(manager,
                               TxnManager::Create(ics.get(), txn_options));
    server = std::make_unique<Server>(manager.get(), server_options);
    TXMOD_ASSERT_OK(server->Start());
  }

  ~ServerFixture() {
    server.reset();
    manager.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }
};

TEST(NetServerTest, FullProtocolRoundTrip) {
  ServerFixture f;
  Client client = f.MustConnect();
  TXMOD_ASSERT_OK(client.Ping());

  TXMOD_ASSERT_OK_AND_ASSIGN(const uint64_t snapshot_version,
                             client.Begin());
  EXPECT_EQ(snapshot_version, f.manager->committed_version());
  TXMOD_ASSERT_OK_AND_ASSIGN(Outcome executed,
                             client.Execute(InsertFkText(910007, 3, "2.5")));
  EXPECT_TRUE(executed.committed);  // ran cleanly; commit is authoritative
  TXMOD_ASSERT_OK_AND_ASSIGN(Outcome committed, client.Commit());
  EXPECT_TRUE(committed.committed);
  EXPECT_TRUE(committed.installed);
  EXPECT_GT(committed.commit_version, snapshot_version);

  TXMOD_ASSERT_OK_AND_ASSIGN(const std::string shown, client.Show("fk_rel"));
  EXPECT_NE(shown.find("i:910007"), std::string::npos);
  EXPECT_NE(shown.find("s:\"k3\""), std::string::npos);

  // An integrity violation is an OK response whose outcome reports the
  // abort — the request succeeded, the transaction aborted.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Outcome aborted, client.Run(InsertFkText(910008, 3, "-1.0")));
  EXPECT_FALSE(aborted.committed);
  EXPECT_FALSE(aborted.conflict);
  EXPECT_FALSE(aborted.reason.empty());

  TXMOD_ASSERT_OK_AND_ASSIGN(const auto stats, client.Stats());
  ASSERT_TRUE(stats.count("server.commits_acked"));
  EXPECT_EQ(stats.at("server.commits_acked"), "1");
  EXPECT_EQ(stats.at("txn.degraded"), "0");
  ASSERT_TRUE(stats.count("server.requests"));
}

TEST(NetServerTest, SessionStateMisuseIsFailedPrecondition) {
  ServerFixture f;
  Client client = f.MustConnect();

  EXPECT_EQ(client.Execute("insert(fk_rel, {(1, \"k0\", 1.0)});")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.Commit().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.Abort().code(), StatusCode::kFailedPrecondition);

  TXMOD_ASSERT_OK(client.Begin().status());
  EXPECT_EQ(client.Begin().status().code(),
            StatusCode::kFailedPrecondition);
  TXMOD_ASSERT_OK(client.Abort());

  // A malformed program kills the session: the server reports the parse
  // error and a fresh `begin` is required.
  TXMOD_ASSERT_OK(client.Begin().status());
  EXPECT_EQ(client.Execute("not a transaction !!!").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Commit().status().code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(client.Show("no_such_relation").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.SetPolicy({{"bogus_field", "1"}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.SetPolicy({{"max_attempts", "0"}}).code(),
            StatusCode::kInvalidArgument);
  TXMOD_ASSERT_OK(client.SetPolicy({{"max_attempts", "4"},
                                    {"deadline_micros", "0"},
                                    {"backoff_initial_micros", "100"},
                                    {"backoff_max_micros", "1000"}}));
}

// The acceptance oracle: >= 4 concurrent client connections hammer the
// server with a conflict-bearing mix; after shutdown, WAL recovery must
// contain EVERY insert the server acknowledged as committed — an acked
// commit is durable, full stop.
TEST(NetServerTest, AckedCommitsSurviveShutdownAndRecovery) {
  constexpr int kClients = 6;
  constexpr int kRunsPerClient = 24;
  ServerOptions server_options;
  server_options.num_workers = 3;
  auto f = std::make_unique<ServerFixture>(server_options);
  const std::size_t initial_fk = (*f->db.Find("fk_rel"))->size();
  const TxnManagerOptions txn_options = f->txn_options;

  std::vector<std::set<int>> acked_ids(kClients);
  std::atomic<int> request_failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", f->server->port());
      if (!client.ok()) {
        ++request_failures;
        return;
      }
      std::mt19937 rng(77 * (c + 1));
      int next_id = 2'000'000 + c * 100'000;
      for (int i = 0; i < kRunsPerClient; ++i) {
        if (rng() % 4 == 0) {
          // Contended no-payload churn on shared keys: conflict fuel.
          const std::string key = StrCat("x", rng() % 8);
          (void)client->Run(StrCat("delete(key_rel, {(\"", key,
                                   "\", \"payload\")});"));
          (void)client->Run(StrCat("insert(key_rel, {(\"", key,
                                   "\", \"payload\")});"));
          continue;
        }
        const int id = next_id++;
        auto outcome = client->Run(
            InsertFkText(id, static_cast<int>(rng() % kKeys), "2.0"));
        if (!outcome.ok()) {
          ++request_failures;
          return;
        }
        if (outcome->committed) {
          acked_ids[static_cast<std::size_t>(c)].insert(id);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(request_failures.load(), 0);

  std::size_t total_acked = 0;
  for (const auto& ids : acked_ids) total_acked += ids.size();
  ASSERT_GT(total_acked, 0u);

  // Shut everything down, then recover from the WAL alone.
  f->server.reset();
  f->manager.reset();
  TXMOD_ASSERT_OK_AND_ASSIGN(const Database recovered,
                             TxnManager::Recover(txn_options));
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* fk_rel, recovered.Find("fk_rel"));
  std::set<int64_t> recovered_ids;
  for (const Tuple& t : *fk_rel) {
    recovered_ids.insert(t.at(0).as_int());
  }
  for (int c = 0; c < kClients; ++c) {
    for (const int id : acked_ids[static_cast<std::size_t>(c)]) {
      EXPECT_TRUE(recovered_ids.count(id))
          << "acked commit of id " << id << " lost after recovery";
    }
  }
  EXPECT_EQ(fk_rel->size(), initial_fk + total_acked);
}

// Deterministic saturation: a commit budget of 1, one `run` parked
// between Execute and Commit via the manager's run-probe seam, and a
// second client on a different worker must be refused IMMEDIATELY with
// kUnavailable — explicit backpressure, never a queue or a hang.
TEST(NetServerTest, SaturatedCommitBudgetReturnsUnavailable) {
  ServerOptions server_options;
  server_options.num_workers = 2;  // round-robin pins the two clients apart
  server_options.max_inflight_commits = 1;
  ServerFixture f(server_options);

  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  bool release = false;
  bool probe_armed = true;
  f.manager->set_run_probe([&](int) {
    std::unique_lock<std::mutex> lock(mu);
    if (!probe_armed) return;
    probe_armed = false;
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  Client first = f.MustConnect();   // worker 0
  Client second = f.MustConnect();  // worker 1

  Result<Outcome> first_outcome = Status::Internal("not yet run");
  std::thread holder([&] {
    first_outcome = first.Run(InsertFkText(930001, 1, "2.0"));
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked; });
  }

  // The budget slot is held by the parked run; the second client is
  // refused without waiting.
  auto refused = second.Run(InsertFkText(930002, 2, "2.0"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("commit budget"),
            std::string::npos);
  EXPECT_EQ(f.server->stats().backpressure_rejections, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  TXMOD_ASSERT_OK(first_outcome.status());
  EXPECT_TRUE(first_outcome->committed);

  // With the slot free again the refused client succeeds on retry.
  TXMOD_ASSERT_OK_AND_ASSIGN(const Outcome retried,
                             second.Run(InsertFkText(930002, 2, "2.0")));
  EXPECT_TRUE(retried.committed);
  f.manager->set_run_probe(nullptr);
}

TEST(NetServerTest, OversizedFrameIsRejectedAndConnectionCloses) {
  ServerOptions server_options;
  server_options.max_frame_payload = 512;
  ServerFixture f(server_options);
  Client client = f.MustConnect();
  TXMOD_ASSERT_OK(client.Ping());

  const std::string huge(2048, 'x');
  auto response = client.Call({Verb::kExecute, huge});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(ResponseStatus(*response).code(), StatusCode::kInvalidArgument);

  // The stream past an over-limit frame cannot be resynchronized; the
  // server closed the connection.
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_EQ(f.server->stats().protocol_errors, 1u);
}

TEST(NetServerTest, DegradedManagerSurfacesUnavailableToClients) {
  FaultInjectingVfs vfs;
  TxnManagerOptions txn_options;
  txn_options.vfs = &vfs;
  ServerFixture f(ServerOptions{}, txn_options);
  Client client = f.MustConnect();

  // First commit works; then every WAL write fails until cleared.
  TXMOD_ASSERT_OK_AND_ASSIGN(Outcome ok_outcome,
                             client.Run(InsertFkText(940001, 1, "2.0")));
  EXPECT_TRUE(ok_outcome.committed);

  FaultSpec spec;
  spec.op = VfsOp::kWrite;
  spec.kind = FaultKind::kEIO;
  spec.nth = 1;
  spec.sticky = true;
  spec.path_substring = "wal";
  vfs.InjectFault(spec);

  auto failing = client.Run(InsertFkText(940002, 2, "2.0"));
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), StatusCode::kUnavailable);

  // The manager is now degraded: writers are refused fast, and the
  // stats verb says so.
  auto rejected = client.Run(InsertFkText(940003, 3, "2.0"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  TXMOD_ASSERT_OK_AND_ASSIGN(const auto stats, client.Stats());
  EXPECT_EQ(stats.at("txn.degraded"), "1");

  // Reads still serve.
  TXMOD_ASSERT_OK(client.Show("fk_rel").status());
}

}  // namespace
}  // namespace txmod::net
