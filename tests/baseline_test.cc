#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/baseline/posthoc_checker.h"
#include "src/baseline/query_modification.h"
#include "tests/test_util.h"

namespace txmod::baseline {
namespace {

using algebra::Transaction;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : db_(MakeBeerDatabase()), ics_(&db_) {
    AddBrewery(&db_, "heineken", "amsterdam", "nl");
    AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  }

  void DefineStandardRules() {
    TXMOD_ASSERT_OK(ics_.DefineConstraint(
        "domain", "forall x (x in beer implies x.alcohol >= 0)"));
    TXMOD_ASSERT_OK(ics_.DefineConstraint(
        "refint",
        "forall x (x in beer implies exists y (y in brewery and "
        "x.brewery = y.name))"));
  }

  Transaction ParseTxn(const std::string& text) {
    algebra::AlgebraParser parser(&db_.schema());
    auto t = parser.ParseTransaction(text);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : Transaction{};
  }

  Database db_;
  core::IntegritySubsystem ics_;
};

// --- post-hoc checking -------------------------------------------------------

TEST_F(BaselineTest, PostHocAcceptsValidTransaction) {
  DefineStandardRules();
  PostHocChecker checker(&ics_);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      checker.Execute(ParseTxn(
          "insert(beer, {(\"ale\", \"ale\", \"heineken\", 6.0)});")));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*db_.Find("beer"))->size(), 2u);
}

TEST_F(BaselineTest, PostHocRejectsViolationAndRollsBack) {
  DefineStandardRules();
  PostHocChecker checker(&ics_);
  Database before = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      checker.Execute(ParseTxn(
          "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});")));
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(db_.SameState(before));
}

TEST_F(BaselineTest, PostHocAgreesWithTransactionModification) {
  DefineStandardRules();
  const std::string txns[] = {
      "insert(beer, {(\"a\", \"ale\", \"heineken\", 6.0)});",
      "insert(beer, {(\"b\", \"ale\", \"nowhere\", 6.0)});",
      "insert(beer, {(\"c\", \"ale\", \"heineken\", -1.0)});",
      "delete(brewery, select[name = \"heineken\"](brewery));",
      "delete(beer, beer); delete(brewery, brewery);",
      "update(beer, name = \"pils\", alcohol := alcohol - 10);",
      "update(beer, name = \"pils\", brewery := \"ghost\");",
  };
  for (const std::string& text : txns) {
    // Run TM on a copy, post-hoc on another copy; decisions must agree.
    Database tm_db = db_.Clone();
    core::IntegritySubsystem tm_ics(&tm_db);
    TXMOD_ASSERT_OK(tm_ics.DefineConstraint(
        "domain", "forall x (x in beer implies x.alcohol >= 0)"));
    TXMOD_ASSERT_OK(tm_ics.DefineConstraint(
        "refint",
        "forall x (x in beer implies exists y (y in brewery and "
        "x.brewery = y.name))"));
    Database ph_db = db_.Clone();
    core::IntegritySubsystem ph_ics(&ph_db);
    TXMOD_ASSERT_OK(ph_ics.DefineConstraint(
        "domain", "forall x (x in beer implies x.alcohol >= 0)"));
    TXMOD_ASSERT_OK(ph_ics.DefineConstraint(
        "refint",
        "forall x (x in beer implies exists y (y in brewery and "
        "x.brewery = y.name))"));
    PostHocChecker checker(&ph_ics);

    algebra::AlgebraParser tm_parser(&tm_db.schema());
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               tm_parser.ParseTransaction(text));
    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult tm_r, tm_ics.Execute(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult ph_r, checker.Execute(txn));
    EXPECT_EQ(tm_r.committed, ph_r.committed) << text;
    EXPECT_TRUE(tm_db.SameState(ph_db)) << text;
  }
}

TEST_F(BaselineTest, PostHocRefusesCompensatingRules) {
  TXMOD_ASSERT_OK(ics_.DefineRule(
      "fix",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN insert(brewery, project[brewery, null, null]("
      "project[brewery](beer) - project[name](brewery)))"));
  PostHocChecker checker(&ics_);
  Result<txn::TxnResult> r = checker.Execute(
      ParseTxn("insert(beer, {(\"a\", \"ale\", \"new\", 6.0)});"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BaselineTest, PostHocWithoutTriggersChecksEverything) {
  DefineStandardRules();
  PostHocOptions options;
  options.use_triggers = false;
  PostHocChecker checker(&ics_, options);
  // A brewery insert cannot violate either rule, but with use_triggers
  // off both are still evaluated — same decision, more work.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      checker.Execute(
          ParseTxn("insert(brewery, {(\"new\", \"x\", \"y\")});")));
  EXPECT_TRUE(r.committed);
  EXPECT_GT(r.stats.tuples_scanned, 0u);
}

// --- query modification -------------------------------------------------------

TEST_F(BaselineTest, QueryModificationFiltersViolatingTuples) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  QueryModifier qm(&ics_);
  EXPECT_TRUE(qm.UnsupportedRules().empty());
  // The violating tuple is silently dropped — the transaction COMMITS.
  // This is the semantic difference to transaction modification that the
  // paper's introduction criticizes in query-modification systems.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      qm.Execute(ParseTxn(
          "insert(beer, {(\"bad\", \"ale\", \"x\", -3.0), "
          "(\"good\", \"ale\", \"x\", 3.0)});")));
  EXPECT_TRUE(r.committed);
  const Relation* beer = *db_.Find("beer");
  EXPECT_EQ(beer->size(), 2u);  // pils + good; bad filtered out
  EXPECT_FALSE(beer->Contains(
      Tuple({Value::String("bad"), Value::String("ale"), Value::String("x"),
             Value::Double(-3.0)})));
}

TEST_F(BaselineTest, QueryModificationRewritesOnlyTargetRelation) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  QueryModifier qm(&ics_);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction modified,
      qm.Modify(ParseTxn("insert(brewery, {(\"n\", \"c\", \"l\")});")));
  // Brewery inserts are untouched (no rule on brewery).
  EXPECT_EQ(modified.program.statements[0].expr->kind(),
            algebra::RelExprKind::kLiteral);
}

TEST_F(BaselineTest, QueryModificationCannotExpressReferentialIntegrity) {
  DefineStandardRules();
  QueryModifier qm(&ics_);
  ASSERT_EQ(qm.UnsupportedRules().size(), 1u);
  EXPECT_EQ(qm.UnsupportedRules()[0], "refint");
  // The orphan insert sails through unchecked — an enforcement gap, not a
  // bug in this baseline: statement-level qualification cannot see other
  // relations. (The paper's Section 1 critique.)
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      qm.Execute(ParseTxn(
          "insert(beer, {(\"orphan\", \"ale\", \"nowhere\", 3.0)});")));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*db_.Find("beer"))->size(), 2u);
}

TEST_F(BaselineTest, QueryModificationHandlesCompoundQualifications) {
  TXMOD_ASSERT_OK(ics_.DefineConstraint(
      "lager_rules",
      "forall x (x in beer and x.type = \"lager\" implies "
      "x.alcohol <= 6 and x.alcohol >= 2)"));
  QueryModifier qm(&ics_);
  EXPECT_TRUE(qm.UnsupportedRules().empty());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      qm.Execute(ParseTxn(
          "insert(beer, {(\"strong_lager\", \"lager\", \"x\", 9.0), "
          "(\"strong_ale\", \"ale\", \"x\", 9.0)});")));
  EXPECT_TRUE(r.committed);
  const Relation* beer = *db_.Find("beer");
  // The lager is filtered (violates), the ale passes (antecedent false).
  EXPECT_EQ(beer->size(), 2u);
  EXPECT_TRUE(beer->Contains(
      Tuple({Value::String("strong_ale"), Value::String("ale"),
             Value::String("x"), Value::Double(9.0)})));
}

}  // namespace
}  // namespace txmod::baseline
