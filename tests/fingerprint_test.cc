// Property tests for the structural fingerprint (fingerprint.h), the
// foundation of shape-keyed plan caching. Randomized RelExpr generation
// pins the two load-bearing guarantees:
//
//  1. *No false cache hits*: fingerprint (shape) equality implies
//     structural equality modulo literal constants — two expressions with
//     the same shape canonicalize to structurally identical trees, and a
//     cached canonical plan executed under an expression's extracted
//     binding computes exactly what a fresh compile of that expression
//     computes.
//  2. *Intended collisions*: rewriting only the literal constants of an
//     expression preserves its shape (that is the whole point — repeated
//     ad-hoc statement shapes must share one plan).
//
// Also pinned: the slot-order contract between FingerprintExpr and
// ParameterizeExpr (their params vectors must be identical), since a
// divergence would bind a cached plan's slots to the wrong constants.

#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/fingerprint.h"
#include "src/algebra/physical_plan.h"
#include "tests/test_util.h"

namespace txmod::algebra {
namespace {

using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class DbContext : public EvalContext {
 public:
  explicit DbContext(const Database* db) : db_(db) {}
  Result<const Relation*> Resolve(RelRefKind kind,
                                  const std::string& name) const override {
    if (kind != RelRefKind::kBase) {
      return Status::FailedPrecondition(
          "auxiliary relations need a transaction context");
    }
    return db_->Find(name);
  }

 private:
  const Database* db_;
};

// ---------------------------------------------------------------------------
// Randomized expression generator over the beer schema. Biased toward
// evaluable expressions (typed predicates, arity-matched set operations)
// but allowed to produce failing ones — both evaluation paths must then
// agree on failure.
// ---------------------------------------------------------------------------

struct Gen {
  std::mt19937 rng;

  explicit Gen(unsigned seed) : rng(seed) {}

  int Pick(int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); }

  Value RandomConst() {
    switch (Pick(4)) {
      case 0:
        return Value::Int(Pick(100));
      case 1:
        return Value::Double(static_cast<double>(Pick(100)) / 4.0);
      case 2:
        return Value::String(Pick(2) == 0 ? "heineken" : "lager");
      default:
        return Value::Null();
    }
  }

  /// A random predicate over an input of `arity` attributes: a
  /// conjunction/disjunction of attr-vs-const and attr-vs-attr
  /// comparisons.
  ScalarExpr RandomPred(int arity, int depth) {
    if (depth > 0 && Pick(3) == 0) {
      ScalarOp op = Pick(2) == 0 ? ScalarOp::kAnd : ScalarOp::kOr;
      return ScalarExpr::Binary(op, RandomPred(arity, depth - 1),
                                RandomPred(arity, depth - 1));
    }
    const ScalarOp cmps[] = {ScalarOp::kEq, ScalarOp::kNe, ScalarOp::kLt,
                             ScalarOp::kLe, ScalarOp::kGt, ScalarOp::kGe};
    const ScalarOp cmp = cmps[Pick(6)];
    ScalarExpr lhs = ScalarExpr::Attr(0, Pick(arity));
    if (Pick(2) == 0) {
      return ScalarExpr::Binary(cmp, std::move(lhs),
                                ScalarExpr::Const(RandomConst()));
    }
    return ScalarExpr::Binary(cmp, std::move(lhs),
                              ScalarExpr::Attr(0, Pick(arity)));
  }

  /// An equi-join predicate between inputs of the given arities, with an
  /// optional extra constant conjunct.
  ScalarExpr RandomJoinPred(int larity, int rarity) {
    ScalarExpr eq = ScalarExpr::Binary(ScalarOp::kEq,
                                       ScalarExpr::Attr(0, Pick(larity)),
                                       ScalarExpr::Attr(1, Pick(rarity)));
    if (Pick(3) == 0) {
      ScalarExpr extra = ScalarExpr::Binary(
          ScalarOp::kGe, ScalarExpr::Attr(0, Pick(larity)),
          ScalarExpr::Const(RandomConst()));
      return ScalarExpr::Binary(ScalarOp::kAnd, std::move(eq),
                                std::move(extra));
    }
    return eq;
  }

  RelExprPtr RandomLiteral(int arity, int* out_arity) {
    const int tuples = Pick(3) + 1;
    std::vector<Tuple> rows;
    for (int i = 0; i < tuples; ++i) {
      std::vector<Value> vals;
      for (int j = 0; j < arity; ++j) vals.push_back(RandomConst());
      rows.push_back(Tuple(std::move(vals)));
    }
    *out_arity = arity;
    return RelExpr::Literal(std::move(rows), arity);
  }

  RelExprPtr Leaf(int* arity) {
    switch (Pick(3)) {
      case 0:
        *arity = 4;
        return RelExpr::Base("beer");
      case 1:
        *arity = 3;
        return RelExpr::Base("brewery");
      default:
        return RandomLiteral(Pick(3) + 1, arity);
    }
  }

  RelExprPtr Expr(int depth, int* arity) {
    if (depth <= 0) return Leaf(arity);
    switch (Pick(8)) {
      case 0: {  // select
        RelExprPtr in = Expr(depth - 1, arity);
        return RelExpr::Select(RandomPred(*arity, 1), std::move(in));
      }
      case 1: {  // projection, possibly with computed/constant items
        RelExprPtr in = Expr(depth - 1, arity);
        const int items = Pick(*arity) + 1;
        std::vector<ProjectionItem> projs;
        for (int i = 0; i < items; ++i) {
          if (Pick(4) == 0) {
            projs.push_back(
                ProjectionItem{ScalarExpr::Const(RandomConst()), "k"});
          } else {
            projs.push_back(
                ProjectionItem{ScalarExpr::Attr(0, Pick(*arity)), ""});
          }
        }
        *arity = items;
        return RelExpr::Project(std::move(projs), std::move(in));
      }
      case 2: {  // join-like
        int la = 0, ra = 0;
        RelExprPtr l = Expr(depth - 1, &la);
        RelExprPtr r = Expr(depth - 1, &ra);
        ScalarExpr pred = RandomJoinPred(la, ra);
        switch (Pick(3)) {
          case 0:
            *arity = la + ra;
            return RelExpr::Join(std::move(pred), std::move(l), std::move(r));
          case 1:
            *arity = la;
            return RelExpr::SemiJoin(std::move(pred), std::move(l),
                                     std::move(r));
          default:
            *arity = la;
            return RelExpr::AntiJoin(std::move(pred), std::move(l),
                                     std::move(r));
        }
      }
      case 3: {  // set operation against an arity-matched literal
        RelExprPtr l = Expr(depth - 1, arity);
        int ra = 0;
        RelExprPtr r = RandomLiteral(*arity, &ra);
        switch (Pick(3)) {
          case 0:
            return RelExpr::Union(std::move(l), std::move(r));
          case 1:
            return RelExpr::Difference(std::move(l), std::move(r));
          default:
            return RelExpr::Intersect(std::move(l), std::move(r));
        }
      }
      case 4: {  // product
        int la = 0, ra = 0;
        RelExprPtr l = Expr(depth - 1, &la);
        RelExprPtr r = Expr(depth - 1, &ra);
        *arity = la + ra;
        return RelExpr::Product(std::move(l), std::move(r));
      }
      case 5: {  // aggregate
        int ia = 0;
        RelExprPtr in = Expr(depth - 1, &ia);
        *arity = 1;
        if (Pick(2) == 0) {
          return RelExpr::Aggregate(AggFunc::kCnt, -1, std::move(in));
        }
        const AggFunc funcs[] = {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                                 AggFunc::kMax};
        return RelExpr::Aggregate(funcs[Pick(4)], Pick(ia), std::move(in));
      }
      default:
        return Leaf(arity);
    }
  }

  /// A structural copy of `e` with every literal constant replaced by a
  /// fresh random one — the "same statement, different constants" rewrite
  /// the cache must collide.
  ScalarExpr RewriteConsts(const ScalarExpr& e) {
    if (e.op() == ScalarOp::kConst) return ScalarExpr::Const(RandomConst());
    ScalarExpr out = e;
    for (ScalarExpr& c : out.mutable_children()) c = RewriteConsts(c);
    return out;
  }

  RelExprPtr RewriteConsts(const RelExpr& e) {
    switch (e.kind()) {
      case RelExprKind::kRef:
        return RelExpr::Ref(e.ref_kind(), e.rel_name());
      case RelExprKind::kLiteral: {
        std::vector<Tuple> rows;
        for (const Tuple& t : e.literal_tuples()) {
          std::vector<Value> vals;
          for (std::size_t i = 0; i < t.arity(); ++i) {
            vals.push_back(RandomConst());
          }
          rows.push_back(Tuple(std::move(vals)));
        }
        return RelExpr::Literal(std::move(rows), e.literal_arity());
      }
      case RelExprKind::kSelect:
        return RelExpr::Select(RewriteConsts(e.predicate()),
                               RewriteConsts(*e.left()));
      case RelExprKind::kProject: {
        std::vector<ProjectionItem> items;
        for (const ProjectionItem& item : e.projections()) {
          items.push_back(
              ProjectionItem{RewriteConsts(item.expr), item.name});
        }
        return RelExpr::Project(std::move(items), RewriteConsts(*e.left()));
      }
      case RelExprKind::kProduct:
        return RelExpr::Product(RewriteConsts(*e.left()),
                                RewriteConsts(*e.right()));
      case RelExprKind::kJoin:
        return RelExpr::Join(RewriteConsts(e.predicate()),
                             RewriteConsts(*e.left()),
                             RewriteConsts(*e.right()));
      case RelExprKind::kSemiJoin:
        return RelExpr::SemiJoin(RewriteConsts(e.predicate()),
                                 RewriteConsts(*e.left()),
                                 RewriteConsts(*e.right()));
      case RelExprKind::kAntiJoin:
        return RelExpr::AntiJoin(RewriteConsts(e.predicate()),
                                 RewriteConsts(*e.left()),
                                 RewriteConsts(*e.right()));
      case RelExprKind::kUnion:
        return RelExpr::Union(RewriteConsts(*e.left()),
                              RewriteConsts(*e.right()));
      case RelExprKind::kDifference:
        return RelExpr::Difference(RewriteConsts(*e.left()),
                                   RewriteConsts(*e.right()));
      case RelExprKind::kIntersect:
        return RelExpr::Intersect(RewriteConsts(*e.left()),
                                  RewriteConsts(*e.right()));
      case RelExprKind::kAggregate:
        if (e.group_by().empty()) {
          return RelExpr::Aggregate(e.agg_func(), e.agg_attr(),
                                    RewriteConsts(*e.left()));
        }
        return RelExpr::GroupAggregate(e.group_by(), e.agg_func(),
                                       e.agg_attr(),
                                       RewriteConsts(*e.left()));
    }
    return RelExpr::Ref(e.ref_kind(), e.rel_name());
  }
};

Database MakePopulatedBeerDatabase() {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  AddBrewery(&db, "guinness", "dublin", "ie");
  AddBeer(&db, "pils", "lager", "heineken", 5.0);
  AddBeer(&db, "stout", "stout", "guinness", 4.2);
  AddBeer(&db, "free", "lager", "heineken", 0.0);
  return db;
}

class FingerprintFuzzTest : public ::testing::TestWithParam<int> {};

// Slot-order contract: both walkers extract the same binding vector.
TEST_P(FingerprintFuzzTest, FingerprintAndParameterizeAgreeOnParams) {
  Gen gen(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    int arity = 0;
    RelExprPtr e = gen.Expr(gen.Pick(4), &arity);
    ExprFingerprint fp = FingerprintExpr(*e);
    ParameterizedExpr pe = ParameterizeExpr(*e);
    ASSERT_EQ(fp.params.size(), pe.params.size()) << e->ToString();
    for (std::size_t j = 0; j < fp.params.size(); ++j) {
      EXPECT_EQ(fp.params[j], pe.params[j])
          << e->ToString() << " slot " << j;
    }
  }
}

// No-false-hit property, structural half: whenever two generated
// expressions fingerprint to the same shape, their canonical trees are
// structurally identical (same nodes, same attribute indices, same
// parameter slots) — i.e. shape equality implies structural equality
// modulo literals.
TEST_P(FingerprintFuzzTest, EqualShapesImplyEqualCanonicalTrees) {
  Gen gen(static_cast<unsigned>(GetParam()) + 1000);
  std::unordered_map<std::string, RelExprPtr> seen;
  int collisions = 0;
  for (int i = 0; i < 300; ++i) {
    int arity = 0;
    RelExprPtr e = gen.Expr(gen.Pick(3), &arity);
    ExprFingerprint fp = FingerprintExpr(*e);
    ParameterizedExpr pe = ParameterizeExpr(*e);
    auto [it, inserted] = seen.emplace(fp.shape, pe.expr);
    if (!inserted) {
      ++collisions;
      EXPECT_TRUE(it->second->Equals(*pe.expr))
          << "shape collision between structurally different trees:\n"
          << it->second->ToString() << "\nvs\n"
          << pe.expr->ToString();
    }
  }
  // The generator repeats shapes often (small vocabulary); an entirely
  // collision-free run would mean this test exercised nothing.
  EXPECT_GT(collisions, 0);
}

// No-false-hit property, semantic half: executing the canonical plan
// under the extracted binding computes exactly what a fresh compile of
// the original expression computes (or fails when it fails).
TEST_P(FingerprintFuzzTest, CanonicalPlanUnderBindingMatchesFreshEval) {
  Database db = MakePopulatedBeerDatabase();
  DbContext ctx(&db);
  Gen gen(static_cast<unsigned>(GetParam()) + 2000);
  int evaluated = 0;
  for (int i = 0; i < 200; ++i) {
    int arity = 0;
    RelExprPtr e = gen.Expr(gen.Pick(4), &arity);
    Result<Relation> fresh = EvaluateRelExpr(*e, ctx);

    ParameterizedExpr pe = ParameterizeExpr(*e);
    auto plan = PhysicalPlan::Compile(pe.expr,
                                      static_cast<int>(pe.params.size()));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<Relation> canon = plan->Execute(ctx, nullptr, &pe.params);

    ASSERT_EQ(fresh.ok(), canon.ok())
        << e->ToString() << "\nfresh: " << fresh.status().ToString()
        << "\ncanon: " << canon.status().ToString();
    if (!fresh.ok()) continue;
    ++evaluated;
    EXPECT_TRUE(fresh->SameTuples(*canon))
        << e->ToString() << "\nfresh: " << fresh->ToString()
        << "\ncanon: " << canon->ToString();
  }
  EXPECT_GT(evaluated, 50);  // the generator must mostly produce evaluable trees
}

// Intended-collision property: a literal-only rewrite keeps the shape and
// the slot count, and executing the *original's* cached canonical plan
// under the *rewrite's* binding equals a fresh evaluation of the rewrite.
TEST_P(FingerprintFuzzTest, LiteralOnlyRewritesCollide) {
  Database db = MakePopulatedBeerDatabase();
  DbContext ctx(&db);
  Gen gen(static_cast<unsigned>(GetParam()) + 3000);
  for (int i = 0; i < 200; ++i) {
    int arity = 0;
    RelExprPtr e1 = gen.Expr(gen.Pick(4), &arity);
    RelExprPtr e2 = gen.RewriteConsts(*e1);

    ExprFingerprint fp1 = FingerprintExpr(*e1);
    ExprFingerprint fp2 = FingerprintExpr(*e2);
    ASSERT_EQ(fp1.shape, fp2.shape)
        << e1->ToString() << "\nvs\n" << e2->ToString();
    ASSERT_EQ(fp1.params.size(), fp2.params.size());

    // Cache simulation: e1's canonical plan, e2's binding.
    ParameterizedExpr pe1 = ParameterizeExpr(*e1);
    auto plan = PhysicalPlan::Compile(pe1.expr,
                                      static_cast<int>(pe1.params.size()));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<Relation> via_cache = plan->Execute(ctx, nullptr, &fp2.params);
    Result<Relation> fresh = EvaluateRelExpr(*e2, ctx);
    ASSERT_EQ(fresh.ok(), via_cache.ok())
        << e2->ToString() << "\nfresh: " << fresh.status().ToString()
        << "\nvia cache: " << via_cache.status().ToString();
    if (fresh.ok()) {
      EXPECT_TRUE(fresh->SameTuples(*via_cache)) << e2->ToString();
    }
  }
}

// Structurally different expressions must not share a shape: a curated
// set of near-miss pairs (differing in attribute index, reference kind,
// projection alias, literal dimensions, operator kind) stays distinct.
TEST(FingerprintTest, NearMissShapesStayDistinct) {
  auto shape = [](const RelExprPtr& e) { return FingerprintExpr(*e).shape; };
  RelExprPtr beer = RelExpr::Base("beer");

  // Attribute index.
  EXPECT_NE(shape(RelExpr::Select(
                ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 0),
                                   ScalarExpr::Const(Value::Int(1))),
                beer)),
            shape(RelExpr::Select(
                ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 1),
                                   ScalarExpr::Const(Value::Int(1))),
                beer)));
  // Comparison operator.
  EXPECT_NE(shape(RelExpr::Select(
                ScalarExpr::Binary(ScalarOp::kLt, ScalarExpr::Attr(0, 3),
                                   ScalarExpr::Const(Value::Int(1))),
                beer)),
            shape(RelExpr::Select(
                ScalarExpr::Binary(ScalarOp::kLe, ScalarExpr::Attr(0, 3),
                                   ScalarExpr::Const(Value::Int(1))),
                beer)));
  // Reference kind and name.
  EXPECT_NE(shape(RelExpr::Base("beer")), shape(RelExpr::DeltaPlus("beer")));
  EXPECT_NE(shape(RelExpr::Base("beer")), shape(RelExpr::Base("brewery")));
  // Literal dimensions (1x2 vs 2x1 must differ even though both carry two
  // constants).
  EXPECT_NE(shape(RelExpr::Literal({Tuple({Value::Int(1), Value::Int(2)})}, 2)),
            shape(RelExpr::Literal(
                {Tuple({Value::Int(1)}), Tuple({Value::Int(2)})}, 1)));
  // Projection alias.
  EXPECT_NE(
      shape(RelExpr::Project(
          {ProjectionItem{ScalarExpr::Attr(0, 0), "a"}}, beer)),
      shape(RelExpr::Project(
          {ProjectionItem{ScalarExpr::Attr(0, 0), "b"}}, beer)));
  // Join flavor.
  ScalarExpr pred = ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 2),
                                       ScalarExpr::Attr(1, 0));
  EXPECT_NE(shape(RelExpr::SemiJoin(pred, beer, RelExpr::Base("brewery"))),
            shape(RelExpr::AntiJoin(pred, beer, RelExpr::Base("brewery"))));
}

// Same constants in different positions must produce the same shape but
// different bindings — the binding, not the shape, carries the values.
TEST(FingerprintTest, BindingCarriesTheConstants) {
  RelExprPtr beer = RelExpr::Base("beer");
  auto sel = [&](int64_t lo, int64_t hi) {
    return RelExpr::Select(
        ScalarExpr::Binary(
            ScalarOp::kAnd,
            ScalarExpr::Binary(ScalarOp::kGe, ScalarExpr::Attr(0, 3),
                               ScalarExpr::Const(Value::Int(lo))),
            ScalarExpr::Binary(ScalarOp::kLe, ScalarExpr::Attr(0, 3),
                               ScalarExpr::Const(Value::Int(hi)))),
        beer);
  };
  ExprFingerprint a = FingerprintExpr(*sel(1, 5));
  ExprFingerprint b = FingerprintExpr(*sel(2, 7));
  EXPECT_EQ(a.shape, b.shape);
  ASSERT_EQ(a.params.size(), 2u);
  ASSERT_EQ(b.params.size(), 2u);
  EXPECT_EQ(a.params[0], Value::Int(1));
  EXPECT_EQ(a.params[1], Value::Int(5));
  EXPECT_EQ(b.params[0], Value::Int(2));
  EXPECT_EQ(b.params[1], Value::Int(7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FingerprintFuzzTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace txmod::algebra
