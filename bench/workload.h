#ifndef TXMOD_BENCH_WORKLOAD_H_
#define TXMOD_BENCH_WORKLOAD_H_

// Shared workload generator for the benchmark harness (DESIGN.md §4).
//
// The paper's Section 7 test database: a key relation (brewery-like,
// playing the referenced side) and a foreign-key relation (beer-like,
// the referencing side). Sizes are parameters; the paper's headline
// configuration is keys=5000, fks=50000, insert batch=5000.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/algebra/statement.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"

namespace txmod::bench {

#define TXMOD_BENCH_CHECK_OK(expr)                          \
  do {                                                      \
    const ::txmod::Status _st = (expr);                     \
    if (!_st.ok()) {                                        \
      std::cerr << "BENCH FATAL: " << _st << "\n";          \
      std::exit(1);                                         \
    }                                                       \
  } while (false)

/// BENCHMARK_MAIN with one extra flag: `--json <file>` (or `--json=<file>`)
/// writes the Google Benchmark JSON report — including the machine/compiler
/// context block — to <file> while keeping the console reporter on stdout.
/// scripts/bench.sh uses it to record reproducible baselines
/// (BENCH_table1.json at the repo root).
///
/// Only defined when benchmark/benchmark.h was included first (the bench
/// binaries do; tests/workload_test.cc includes this header without linking
/// Google Benchmark and must not see it).
#ifdef BENCHMARK_MAIN
inline int BenchMain(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argc > 0 ? argv[0] : "bench");
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  if (!json_path.empty()) {
    args.push_back(StrCat("--benchmark_out=", json_path));
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#define TXMOD_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                         \
    return ::txmod::bench::BenchMain(argc, argv);           \
  }
#endif  // BENCHMARK_MAIN

/// key_rel(key string, payload string)
/// fk_rel(id int, ref string, amount double)
inline Database MakeKeyFkDatabase(int keys, int fks) {
  Database db;
  TXMOD_BENCH_CHECK_OK(db.CreateRelation(RelationSchema(
      "key_rel", {Attribute{"key", AttrType::kString},
                  Attribute{"payload", AttrType::kString}})));
  TXMOD_BENCH_CHECK_OK(db.CreateRelation(RelationSchema(
      "fk_rel", {Attribute{"id", AttrType::kInt},
                 Attribute{"ref", AttrType::kString},
                 Attribute{"amount", AttrType::kDouble}})));
  Relation* key_rel = *db.FindMutable("key_rel");
  for (int i = 0; i < keys; ++i) {
    key_rel->Insert(Tuple({Value::String(StrCat("k", i)),
                           Value::String("payload")}));
  }
  Relation* fk_rel = *db.FindMutable("fk_rel");
  for (int i = 0; i < fks; ++i) {
    fk_rel->Insert(Tuple({Value::Int(i),
                          Value::String(StrCat("k", i % (keys > 0 ? keys : 1))),
                          Value::Double(1.0 + i % 10)}));
  }
  return db;
}

/// A transaction inserting `batch` fresh, valid fk_rel tuples (ids start
/// above the existing range; refs cycle through existing keys).
inline algebra::Transaction MakeFkInsertBatch(int batch, int keys,
                                              int id_base = 1'000'000) {
  std::vector<Tuple> tuples;
  tuples.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    tuples.push_back(Tuple({Value::Int(id_base + i),
                            Value::String(StrCat("k", i % (keys > 0 ? keys : 1))),
                            Value::Double(2.5)}));
  }
  algebra::Transaction txn;
  txn.program.statements.push_back(algebra::Statement::Insert(
      "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
  return txn;
}

/// Adds `extra` keys ("x0", "x1", ...) that no fk_rel tuple references —
/// deletable without violating referential integrity, so delete-heavy
/// workloads can run in steady state (commit, not abort).
inline void AddUnreferencedKeys(Database* db, int extra) {
  Relation* key_rel = *db->FindMutable("key_rel");
  for (int i = 0; i < extra; ++i) {
    key_rel->Insert(Tuple({Value::String(StrCat("x", i)),
                           Value::String("payload")}));
  }
}

/// A transaction deleting the first `batch` unreferenced keys (see
/// AddUnreferencedKeys). Under the referential constraint this triggers
/// the DEL(key_rel) check, whose core is
///   semijoin[l.ref = r.key](fk_rel, dminus(key_rel))
/// — the join-heavy enforcement shape.
inline algebra::Transaction MakeKeyDeleteBatch(int batch) {
  std::vector<Tuple> tuples;
  tuples.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    tuples.push_back(Tuple({Value::String(StrCat("x", i)),
                            Value::String("payload")}));
  }
  algebra::Transaction txn;
  txn.program.statements.push_back(algebra::Statement::Delete(
      "key_rel", algebra::RelExpr::Literal(std::move(tuples), 2)));
  return txn;
}

/// The referential integrity constraint of the Section 7 experiment.
inline const char* RefIntConstraint() {
  return "forall x (x in fk_rel implies exists y (y in key_rel and "
         "x.ref = y.key))";
}

/// The domain constraint of the Section 7 experiment.
inline const char* DomainConstraint() {
  return "forall x (x in fk_rel implies x.amount >= 0)";
}

}  // namespace txmod::bench

#endif  // TXMOD_BENCH_WORKLOAD_H_
