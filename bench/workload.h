#ifndef TXMOD_BENCH_WORKLOAD_H_
#define TXMOD_BENCH_WORKLOAD_H_

// Shared workload generator for the benchmark harness (DESIGN.md §4).
//
// The paper's Section 7 test database: a key relation (brewery-like,
// playing the referenced side) and a foreign-key relation (beer-like,
// the referencing side). Sizes are parameters; the paper's headline
// configuration is keys=5000, fks=50000, insert batch=5000.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/algebra/statement.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"

namespace txmod::bench {

#define TXMOD_BENCH_CHECK_OK(expr)                          \
  do {                                                      \
    const ::txmod::Status _st = (expr);                     \
    if (!_st.ok()) {                                        \
      std::cerr << "BENCH FATAL: " << _st << "\n";          \
      std::exit(1);                                         \
    }                                                       \
  } while (false)

/// key_rel(key string, payload string)
/// fk_rel(id int, ref string, amount double)
inline Database MakeKeyFkDatabase(int keys, int fks) {
  Database db;
  TXMOD_BENCH_CHECK_OK(db.CreateRelation(RelationSchema(
      "key_rel", {Attribute{"key", AttrType::kString},
                  Attribute{"payload", AttrType::kString}})));
  TXMOD_BENCH_CHECK_OK(db.CreateRelation(RelationSchema(
      "fk_rel", {Attribute{"id", AttrType::kInt},
                 Attribute{"ref", AttrType::kString},
                 Attribute{"amount", AttrType::kDouble}})));
  Relation* key_rel = *db.FindMutable("key_rel");
  for (int i = 0; i < keys; ++i) {
    key_rel->Insert(Tuple({Value::String(StrCat("k", i)),
                           Value::String("payload")}));
  }
  Relation* fk_rel = *db.FindMutable("fk_rel");
  for (int i = 0; i < fks; ++i) {
    fk_rel->Insert(Tuple({Value::Int(i),
                          Value::String(StrCat("k", i % (keys > 0 ? keys : 1))),
                          Value::Double(1.0 + i % 10)}));
  }
  return db;
}

/// A transaction inserting `batch` fresh, valid fk_rel tuples (ids start
/// above the existing range; refs cycle through existing keys).
inline algebra::Transaction MakeFkInsertBatch(int batch, int keys,
                                              int id_base = 1'000'000) {
  std::vector<Tuple> tuples;
  tuples.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    tuples.push_back(Tuple({Value::Int(id_base + i),
                            Value::String(StrCat("k", i % (keys > 0 ? keys : 1))),
                            Value::Double(2.5)}));
  }
  algebra::Transaction txn;
  txn.program.statements.push_back(algebra::Statement::Insert(
      "fk_rel", algebra::RelExpr::Literal(std::move(tuples), 3)));
  return txn;
}

/// The referential integrity constraint of the Section 7 experiment.
inline const char* RefIntConstraint() {
  return "forall x (x in fk_rel implies exists y (y in key_rel and "
         "x.ref = y.key))";
}

/// The domain constraint of the Section 7 experiment.
inline const char* DomainConstraint() {
  return "forall x (x in fk_rel implies x.amount >= 0)";
}

}  // namespace txmod::bench

#endif  // TXMOD_BENCH_WORKLOAD_H_
