// E4 — the paper's domain-constraint claim (Section 7):
//
//   "Checking a domain constraint in the same situation takes less than
//    1 second."
//
// Same database and batch as E3 (bench_refint), domain constraint instead
// of referential integrity. The paper's shape to reproduce: the domain
// check is several times cheaper than the referential check at equal
// sizes (no second relation to probe). Counters carry the paper bound.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/txn/executor.h"

namespace txmod::bench {
namespace {

void RunDomain(benchmark::State& state, core::OptimizationLevel level) {
  const int keys = static_cast<int>(state.range(0));
  const int fks = static_cast<int>(state.range(1));
  const int batch = static_cast<int>(state.range(2));

  Database db = MakeKeyFkDatabase(keys, fks);
  core::SubsystemOptions options;
  options.optimization = level;
  core::IntegritySubsystem ics(&db, options);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));

  const algebra::Transaction txn = MakeFkInsertBatch(batch, keys);
  auto modified = ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));

  uint64_t scanned = 0;
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("unexpected abort");
      return;
    }
    scanned = result->stats.tuples_scanned;
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
  state.counters["paper_limit_s"] = 1.0;
  state.counters["tuples_scanned"] = static_cast<double>(scanned);
}

void BM_DomainDifferential(benchmark::State& state) {
  RunDomain(state, core::OptimizationLevel::kDifferential);
}
void BM_DomainFullCheck(benchmark::State& state) {
  RunDomain(state, core::OptimizationLevel::kNone);
}

BENCHMARK(BM_DomainDifferential)
    ->Args({5000, 50000, 5000})   // the Section 7 configuration
    ->Args({5000, 50000, 500})
    ->Args({5000, 50000, 50})
    ->Args({20000, 200000, 5000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_DomainFullCheck)
    ->Args({5000, 50000, 5000})
    ->Args({5000, 50000, 500})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Compound transactions: several updates of different types in one
// transaction, with both a domain and an aggregate rule in the catalog.
void BM_MixedTransaction(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(1000, 10000);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  TXMOD_BENCH_CHECK_OK(
      ics.DefineConstraint("bound", "cnt(fk_rel) <= 1000000"));
  algebra::Transaction txn = MakeFkInsertBatch(100, 1000);
  txn.program.statements.push_back(algebra::Statement::Update(
      "fk_rel",
      algebra::ScalarExpr::Binary(
          algebra::ScalarOp::kLt, algebra::ScalarExpr::Attr(0, 0, "id"),
          algebra::ScalarExpr::Const(Value::Int(50))),
      {algebra::UpdateSet{
          2, "amount",
          algebra::ScalarExpr::Binary(
              algebra::ScalarOp::kAdd, algebra::ScalarExpr::Attr(0, 2),
              algebra::ScalarExpr::Const(Value::Double(0.5)))}}));
  auto modified = ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());
  for (auto _ : state) {
    state.PauseTiming();
    Database scratch = db.Clone();
    state.ResumeTiming();
    auto result = txn::ExecuteTransaction(*modified, &scratch);
    TXMOD_BENCH_CHECK_OK(result.status());
  }
}
BENCHMARK(BM_MixedTransaction)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
