// Operator micro-benchmarks of the extended relational algebra engine —
// the substrate every enforcement cost in E1–E8 decomposes into. Useful
// for sanity-checking the higher-level numbers (e.g. E3's referential
// check ≈ one projection of each relation plus one difference).

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/parser.h"
#include "src/txn/executor.h"

namespace txmod::bench {
namespace {

class Fixture {
 public:
  explicit Fixture(int fks)
      : db_(MakeKeyFkDatabase(fks / 10, fks)), ctx_(&db_) {}

  algebra::RelExprPtr Parse(const std::string& text) {
    algebra::AlgebraParser parser(&db_.schema());
    auto e = parser.ParseExpression(text);
    TXMOD_BENCH_CHECK_OK(e.status());
    return *e;
  }

  Relation Eval(const algebra::RelExpr& e) {
    auto r = algebra::EvaluateRelExpr(e, ctx_);
    TXMOD_BENCH_CHECK_OK(r.status());
    return *std::move(r);
  }

 private:
  Database db_;
  txn::TxnContext ctx_;
};

void RunExpr(benchmark::State& state, const std::string& text) {
  Fixture fixture(static_cast<int>(state.range(0)));
  algebra::RelExprPtr e = fixture.Parse(text);
  std::size_t out_size = 0;
  for (auto _ : state) {
    Relation r = fixture.Eval(*e);
    out_size = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["out_tuples"] = static_cast<double>(out_size);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Select(benchmark::State& state) {
  RunExpr(state, "select[amount >= 5](fk_rel)");
}
void BM_Project(benchmark::State& state) {
  RunExpr(state, "project[ref](fk_rel)");
}
void BM_HashJoin(benchmark::State& state) {
  RunExpr(state, "join[l.ref = r.key](fk_rel, key_rel)");
}
void BM_SemiJoin(benchmark::State& state) {
  RunExpr(state, "semijoin[l.ref = r.key](fk_rel, key_rel)");
}
void BM_AntiJoin(benchmark::State& state) {
  RunExpr(state, "antijoin[l.ref = r.key](fk_rel, key_rel)");
}
void BM_Difference(benchmark::State& state) {
  RunExpr(state, "project[ref](fk_rel) - project[key](key_rel)");
}
void BM_Union(benchmark::State& state) {
  RunExpr(state, "project[ref](fk_rel) union project[key](key_rel)");
}
void BM_Aggregate(benchmark::State& state) {
  RunExpr(state, "sum[amount](fk_rel)");
}
void BM_Count(benchmark::State& state) { RunExpr(state, "cnt(fk_rel)"); }

#define TXMOD_ALGEBRA_BENCH(name) \
  BENCHMARK(name)->Range(1000, 64000)->Unit(benchmark::kMicrosecond)
TXMOD_ALGEBRA_BENCH(BM_Select);
TXMOD_ALGEBRA_BENCH(BM_Project);
TXMOD_ALGEBRA_BENCH(BM_HashJoin);
TXMOD_ALGEBRA_BENCH(BM_SemiJoin);
TXMOD_ALGEBRA_BENCH(BM_AntiJoin);
TXMOD_ALGEBRA_BENCH(BM_Difference);
TXMOD_ALGEBRA_BENCH(BM_Union);
TXMOD_ALGEBRA_BENCH(BM_Aggregate);
TXMOD_ALGEBRA_BENCH(BM_Count);
#undef TXMOD_ALGEBRA_BENCH

// Statement execution path: inserts with differential bookkeeping.
void BM_InsertBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Database db = MakeKeyFkDatabase(100, 1000);
  const algebra::Transaction txn = MakeFkInsertBatch(batch, 100);
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));
  for (auto _ : state) {
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(txn, &db).status());
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InsertBatch)->Range(100, 10000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
