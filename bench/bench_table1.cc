// E1 — Table 1: translation of typical constraint constructs.
//
// For every row of the paper's Table 1, this harness measures
//   (a) TransC translation cost (CL condition -> aborting XRA program),
//   (b) enforcement cost of the produced alarm program on a populated
//       database (the check passes: steady-state cost).
//
// The translated form of each row is verified verbatim against the paper
// in tests/translate_test.cc; here the same constructs are timed.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/calculus/analyzer.h"
#include "src/calculus/parser.h"
#include "src/core/translate.h"
#include "src/txn/executor.h"

namespace txmod::bench {
namespace {

struct Row {
  const char* name;
  const char* constraint;
};

// The seven construct rows of Table 1, instantiated on the key/fk schema.
const Row kRows[] = {
    {"row1_universal",
     "forall x (x in fk_rel implies x.amount >= 0)"},
    {"row2_referential",
     "forall x (x in fk_rel implies exists y (y in key_rel and "
     "x.ref = y.key))"},
    {"row3_exclusion",
     "forall x (x in fk_rel implies forall y (y in key_rel implies "
     "x.ref != y.payload))"},
    {"row4_pair",
     "forall x, y ((x in fk_rel and y in key_rel and x.ref = y.key) "
     "implies x.amount >= 1)"},
    {"row5_existential",
     "exists x (x in key_rel and x.payload = \"payload\")"},
    {"row6_aggregate", "sum(fk_rel, amount) >= 0"},
    {"row7_count", "cnt(fk_rel) <= 10000000"},
};

calculus::AnalyzedFormula AnalyzeRow(const Database& db, const Row& row) {
  auto parsed = calculus::ParseFormula(row.constraint);
  TXMOD_BENCH_CHECK_OK(parsed.status());
  auto analyzed = calculus::AnalyzeFormula(*parsed, db.schema());
  TXMOD_BENCH_CHECK_OK(analyzed.status());
  return *std::move(analyzed);
}

void BM_Table1Translate(benchmark::State& state) {
  const Row& row = kRows[state.range(0)];
  state.SetLabel(row.name);
  Database db = MakeKeyFkDatabase(10, 10);
  const calculus::AnalyzedFormula analyzed = AnalyzeRow(db, row);
  for (auto _ : state) {
    auto program = core::TransC(analyzed, db.schema(), "violation");
    TXMOD_BENCH_CHECK_OK(program.status());
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Table1Translate)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);

void BM_Table1Enforce(benchmark::State& state) {
  const Row& row = kRows[state.range(0)];
  state.SetLabel(row.name);
  const int keys = static_cast<int>(state.range(1));
  Database db = MakeKeyFkDatabase(keys, keys * 10);
  const calculus::AnalyzedFormula analyzed = AnalyzeRow(db, row);
  auto program = core::TransC(analyzed, db.schema(), "violation");
  TXMOD_BENCH_CHECK_OK(program.status());
  algebra::Transaction txn;
  txn.program = *program;
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(txn, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("constraint unexpectedly violated");
      return;
    }
  }
  state.counters["key_tuples"] = keys;
  state.counters["fk_tuples"] = keys * 10;
}
BENCHMARK(BM_Table1Enforce)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 6, 1), {100, 1000}})
    ->Unit(benchmark::kMicrosecond);

// E8 — shape-keyed plan caching for repeated ad-hoc statements.
//
// The paper pays all rule analysis at definition time so enforcement pays
// none; the shaped plan cache extends the same split to ad-hoc
// statements: statements that repeat a *shape* (same tree modulo literal
// constants) compile once and execute under per-statement bindings. This
// bench cycles through pre-built transactions of one shape with rotating
// constants and compares the subsystem's default cache against a
// fresh-compile-every-statement subsystem (adhoc_plan_capacity = 0,
// which also exercises the canonicalization cost it saves nothing on).
// The reported cache_hit/cache_miss counters make the reuse visible.
void RunAdHocRepeatedShape(benchmark::State& state, std::size_t capacity) {
  const int keys = 200, fks = 1000;
  Database db = MakeKeyFkDatabase(keys, fks);
  core::SubsystemOptions options;
  options.adhoc_plan_capacity = capacity;
  core::IntegritySubsystem ics(&db, options);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));

  // 64 literal-only variants of one multi-operator transaction shape:
  //   tmp := project[ref](select[amount >= A and ref != "kB"](fk_rel));
  //   chk := diff(tmp, project[key](key_rel));
  //   insert(fk_rel, {(id, "kC", 2.5)});
  std::vector<algebra::Transaction> variants;
  int next_id = 5'000'000;
  for (int v = 0; v < 64; ++v) {
    using algebra::RelExpr;
    using algebra::ScalarExpr;
    using algebra::ScalarOp;
    ScalarExpr pred = ScalarExpr::Binary(
        ScalarOp::kAnd,
        ScalarExpr::Binary(ScalarOp::kGe, ScalarExpr::Attr(0, 2, "amount"),
                           ScalarExpr::Const(Value::Double(v % 10))),
        ScalarExpr::Binary(ScalarOp::kNe, ScalarExpr::Attr(0, 1, "ref"),
                           ScalarExpr::Const(
                               Value::String(StrCat("k", v % keys)))));
    algebra::Transaction txn;
    txn.program.statements.push_back(algebra::Statement::Assign(
        "tmp", RelExpr::ProjectAttrs(
                   {1}, RelExpr::Select(std::move(pred),
                                        RelExpr::Base("fk_rel")))));
    txn.program.statements.push_back(algebra::Statement::Assign(
        "chk", RelExpr::Difference(
                   RelExpr::Temp("tmp"),
                   RelExpr::ProjectAttrs({0}, RelExpr::Base("key_rel")))));
    txn.program.statements.push_back(algebra::Statement::Insert(
        "fk_rel",
        RelExpr::Literal({Tuple({Value::Int(next_id++),
                                 Value::String(StrCat("k", v % keys)),
                                 Value::Double(2.5)})},
                         3)));
    variants.push_back(std::move(txn));
  }

  std::size_t i = 0;
  for (auto _ : state) {
    auto result = ics.Execute(variants[i++ % variants.size()]);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("transaction unexpectedly aborted");
      return;
    }
  }
  state.counters["cache_hits"] =
      static_cast<double>(ics.plan_cache().shape_hits());
  state.counters["cache_misses"] =
      static_cast<double>(ics.plan_cache().shape_misses());
}

void BM_AdHocRepeatedShape(benchmark::State& state) {
  RunAdHocRepeatedShape(state, algebra::PlanCache::kDefaultShapeCapacity);
}
void BM_AdHocRepeatedShapeFreshCompile(benchmark::State& state) {
  RunAdHocRepeatedShape(state, 0);
}
BENCHMARK(BM_AdHocRepeatedShape)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AdHocRepeatedShapeFreshCompile)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
