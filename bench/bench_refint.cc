// E3 — the paper's headline referential-integrity claim (Section 7):
//
//   "Given a test database with a key relation of 5000 tuples and a
//    foreign key relation of 50000 tuples, checking a referential
//    integrity constraint after the insertion of 5000 new tuples into the
//    foreign key relation can be completed within 3 seconds on an 8-node
//    POOMA multiprocessor."
//
// The benchmark executes the *modified* transaction — batch insert plus
// the appended integrity program — end to end, reporting enforcement
// time. Counters: paper_limit_s = 3.0 (the bound to beat), and the sweep
// shows how the cost scales with relation and batch sizes. The
// `full_check` variants disable differential optimization (Section 5.2.1
// ablation, E7): enforcement then scans the whole foreign-key relation.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/txn/executor.h"

namespace txmod::bench {
namespace {

void RunRefInt(benchmark::State& state, core::OptimizationLevel level) {
  const int keys = static_cast<int>(state.range(0));
  const int fks = static_cast<int>(state.range(1));
  const int batch = static_cast<int>(state.range(2));

  Database db = MakeKeyFkDatabase(keys, fks);
  core::SubsystemOptions options;
  options.optimization = level;
  core::IntegritySubsystem ics(&db, options);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));

  const algebra::Transaction txn = MakeFkInsertBatch(batch, keys);
  auto modified = ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());

  // The inverse transaction restores the pre-state between iterations.
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));

  uint64_t scanned = 0;
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("unexpected abort");
      return;
    }
    scanned = result->stats.tuples_scanned;
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
  state.counters["paper_limit_s"] = 3.0;
  state.counters["tuples_scanned"] = static_cast<double>(scanned);
  state.counters["batch"] = batch;
}

void BM_RefIntDifferential(benchmark::State& state) {
  RunRefInt(state, core::OptimizationLevel::kDifferential);
}
void BM_RefIntFullCheck(benchmark::State& state) {
  RunRefInt(state, core::OptimizationLevel::kNone);
}

// The paper's configuration first, then the scaling sweep.
BENCHMARK(BM_RefIntDifferential)
    ->Args({5000, 50000, 5000})   // the Section 7 experiment
    ->Args({5000, 50000, 500})
    ->Args({5000, 50000, 50})
    ->Args({1000, 10000, 1000})
    ->Args({20000, 200000, 5000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_RefIntFullCheck)
    ->Args({5000, 50000, 5000})
    ->Args({5000, 50000, 500})
    ->Args({5000, 50000, 50})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Violation-path cost: the batch contains one orphan, enforcement must
// catch it (and the abort rolls everything back).
void BM_RefIntViolationDetected(benchmark::State& state) {
  const int keys = 5000, fks = 50000, batch = 5000;
  Database db = MakeKeyFkDatabase(keys, fks);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  algebra::Transaction txn = MakeFkInsertBatch(batch - 1, keys);
  std::vector<Tuple> orphan = {Tuple({Value::Int(2'000'000),
                                      Value::String("missing_key"),
                                      Value::Double(1.0)})};
  txn.program.statements.push_back(algebra::Statement::Insert(
      "fk_rel", algebra::RelExpr::Literal(std::move(orphan), 3)));
  auto modified = ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (result->committed) {
      state.SkipWithError("violation not detected");
      return;
    }
  }
}
BENCHMARK(BM_RefIntViolationDetected)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
