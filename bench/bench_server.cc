// Multi-threaded load driver for the network service (src/net): N client
// threads hammer a served TxnManager over loopback TCP with a
// conflict-bearing insert mix, recording commits/sec and request-latency
// percentiles. Not a Google Benchmark binary — wall-clock load with many
// live connections doesn't fit the timer model — but it speaks the same
// CLI dialect so scripts/bench.sh can drive it uniformly:
//
//   bench_server [--clients=8] [--workers=4] [--seconds=2]
//                [--json=PATH] [--verify]
//                [--benchmark_min_time=X]   (smoke: shrinks the run)
//
// --json writes a Google-Benchmark-shaped report (context block +
// "benchmarks" array) so the checked-in BENCH_server.json baseline sits
// beside the other BENCH_*.json files. --verify recovers the database
// from the WAL after shutdown and fails (exit 1) unless EVERY commit the
// server acknowledged is present — the zero-lost-acked-commits gate the
// CI server-integration job runs.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/txn/txn_manager.h"

namespace txmod::bench {
namespace {

constexpr int kKeys = 64;

struct Options {
  int clients = 8;
  int workers = 4;
  double seconds = 2.0;
  std::string json_path;
  bool verify = false;
};

struct ClientResult {
  std::vector<int64_t> latencies_micros;  // every request, committed or not
  std::set<int64_t> acked_ids;            // inserts the server acked
  uint64_t requests = 0;
  uint64_t conflicts = 0;
  uint64_t backpressure = 0;
  uint64_t errors = 0;
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ClientLoop(uint16_t port, int client_id, int64_t deadline_micros,
                ClientResult* out) {
  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    ++out->errors;
    return;
  }
  net::Client client = std::move(*connected);
  std::mt19937 rng(static_cast<unsigned>(1 + client_id));
  int64_t next_id = 10'000'000 + static_cast<int64_t>(client_id) * 1'000'000;
  while (NowMicros() < deadline_micros) {
    std::string txn;
    int64_t insert_id = -1;
    if (rng() % 8 == 0) {
      // Contended churn on a shared key: conflict + retry fuel.
      const std::string key = StrCat("x", rng() % 8);
      txn = StrCat("delete(key_rel, {(\"", key, "\", \"payload\")}); ",
                   "insert(key_rel, {(\"", key, "\", \"payload\")});");
    } else {
      insert_id = next_id++;
      txn = StrCat("insert(fk_rel, {(", insert_id, ", \"k", rng() % kKeys,
                   "\", 2.0)});");
    }
    const int64_t start = NowMicros();
    auto outcome = client.Run(txn);
    out->latencies_micros.push_back(NowMicros() - start);
    ++out->requests;
    if (!outcome.ok()) {
      if (outcome.status().code() == StatusCode::kUnavailable) {
        ++out->backpressure;
      } else {
        ++out->errors;
        return;  // transport failure: stop this client
      }
      continue;
    }
    if (outcome->committed) {
      if (insert_id >= 0) out->acked_ids.insert(insert_id);
    } else if (outcome->conflict) {
      ++out->conflicts;
    }
  }
}

int64_t Percentile(std::vector<int64_t>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  std::nth_element(sorted_in_place->begin(),
                   sorted_in_place->begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted_in_place->end());
  return (*sorted_in_place)[idx];
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void WriteJson(const Options& options, const std::string& executable,
               double elapsed_seconds, double commits_per_sec, int64_t p50,
               int64_t p99, uint64_t requests, uint64_t acked,
               uint64_t conflicts, uint64_t backpressure) {
  std::ofstream out(options.json_path);
  if (!out) {
    std::cerr << "cannot write " << options.json_path << "\n";
    return;
  }
  char date[64];
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%FT%T%z", std::localtime(&now));
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
  const std::string name =
      StrCat("BM_ServerLoad/clients:", options.clients,
             "/workers:", options.workers);
  out << "{\n  \"context\": {\n"
      << "    \"date\": \"" << date << "\",\n"
      << "    \"host_name\": \"" << JsonEscape(host) << "\",\n"
      << "    \"executable\": \"" << JsonEscape(executable) << "\",\n"
      << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "    \"library_build_type\": \"release\"\n"
      << "  },\n  \"benchmarks\": [\n"
      << "    {\n"
      << "      \"name\": \"" << name << "\",\n"
      << "      \"run_type\": \"iteration\",\n"
      << "      \"iterations\": " << requests << ",\n"
      << "      \"real_time\": " << elapsed_seconds * 1e9 << ",\n"
      << "      \"time_unit\": \"ns\",\n"
      << "      \"commits_per_sec\": " << commits_per_sec << ",\n"
      << "      \"latency_p50_us\": " << p50 << ",\n"
      << "      \"latency_p99_us\": " << p99 << ",\n"
      << "      \"requests\": " << requests << ",\n"
      << "      \"acked_commits\": " << acked << ",\n"
      << "      \"conflict_aborts\": " << conflicts << ",\n"
      << "      \"backpressure_rejections\": " << backpressure << "\n"
      << "    }\n  ]\n}\n";
  std::cout << "JSON written to " << options.json_path << "\n";
}

int Run(const Options& options, const std::string& executable) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      StrCat("txmod_bench_server_", ::getpid());
  std::filesystem::create_directories(dir);
  txn::TxnManagerOptions txn_options;
  txn_options.wal_path = (dir / "wal.log").string();
  txn_options.checkpoint_path = (dir / "checkpoint.db").string();

  Database db = MakeKeyFkDatabase(kKeys, 128);
  AddUnreferencedKeys(&db, 8);
  const std::size_t initial_fk = (*db.Find("fk_rel"))->size();
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  auto created = txn::TxnManager::Create(&ics, txn_options);
  TXMOD_BENCH_CHECK_OK(created.status());
  std::unique_ptr<txn::TxnManager> manager = std::move(*created);

  net::ServerOptions server_options;
  server_options.num_workers = options.workers;
  net::Server server(manager.get(), server_options);
  TXMOD_BENCH_CHECK_OK(server.Start());

  const int64_t bench_start = NowMicros();
  const int64_t deadline =
      bench_start + static_cast<int64_t>(options.seconds * 1e6);
  std::vector<ClientResult> results(
      static_cast<std::size_t>(options.clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back(ClientLoop, server.port(), c, deadline,
                         &results[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      static_cast<double>(NowMicros() - bench_start) / 1e6;

  server.Stop();
  const net::ServerStats server_stats = server.stats();
  manager.reset();

  std::vector<int64_t> latencies;
  std::set<int64_t> acked_ids;
  uint64_t requests = 0, conflicts = 0, backpressure = 0, errors = 0;
  for (auto& r : results) {
    latencies.insert(latencies.end(), r.latencies_micros.begin(),
                     r.latencies_micros.end());
    acked_ids.insert(r.acked_ids.begin(), r.acked_ids.end());
    requests += r.requests;
    conflicts += r.conflicts;
    backpressure += r.backpressure;
    errors += r.errors;
  }
  const double commits_per_sec =
      elapsed > 0 ? static_cast<double>(server_stats.commits_acked) / elapsed
                  : 0;
  const int64_t p50 = Percentile(&latencies, 0.50);
  const int64_t p99 = Percentile(&latencies, 0.99);

  std::cout << "clients " << options.clients << ", workers "
            << options.workers << ", " << elapsed << " s\n"
            << "requests            " << requests << "\n"
            << "acked commits       " << server_stats.commits_acked << "\n"
            << "commits/sec         " << commits_per_sec << "\n"
            << "latency p50 (us)    " << p50 << "\n"
            << "latency p99 (us)    " << p99 << "\n"
            << "conflict aborts     " << conflicts << "\n"
            << "backpressure        " << backpressure << "\n"
            << "client errors       " << errors << "\n";

  int exit_code = errors == 0 ? 0 : 1;
  if (options.verify) {
    // The acceptance gate: recover from the WAL and require every acked
    // insert to be present — an acknowledged commit is durable.
    auto recovered = txn::TxnManager::Recover(txn_options);
    TXMOD_BENCH_CHECK_OK(recovered.status());
    auto fk_rel = recovered->Find("fk_rel");
    TXMOD_BENCH_CHECK_OK(fk_rel.status());
    std::set<int64_t> recovered_ids;
    for (const Tuple& t : **fk_rel) {
      recovered_ids.insert(t.at(0).as_int());
    }
    uint64_t lost = 0;
    for (const int64_t id : acked_ids) {
      if (!recovered_ids.count(id)) {
        ++lost;
        std::cerr << "LOST acked commit: fk_rel id " << id << "\n";
      }
    }
    std::cout << "verify: " << acked_ids.size() << " acked inserts, " << lost
              << " lost after recovery (initial fk_rel " << initial_fk
              << ", recovered " << (*fk_rel)->size() << ")\n";
    if (lost > 0) exit_code = 1;
  }
  (void)initial_fk;

  if (!options.json_path.empty()) {
    WriteJson(options, executable, elapsed, commits_per_sec, p50, p99,
              requests, server_stats.commits_acked, conflicts, backpressure);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return exit_code;
}

}  // namespace
}  // namespace txmod::bench

int main(int argc, char** argv) {
  txmod::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--clients=", 0) == 0) {
      options.clients = std::atoi(value("--clients="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::atoi(value("--workers="));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      options.seconds = std::atof(value("--seconds="));
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value("--json=");
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // scripts/bench.sh --smoke passes this to every bench binary:
      // interpret it as "run briefly".
      const double t = std::atof(value("--benchmark_min_time="));
      options.seconds = std::max(0.05, t * 10);
      options.clients = std::min(options.clients, 4);
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Other Google Benchmark flags are meaningless here; ignore.
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: bench_server [--clients=N] [--workers=N] "
                   "[--seconds=S] [--json=PATH] [--verify]\n";
      return 2;
    }
  }
  if (options.clients < 1 || options.workers < 1 || options.seconds <= 0) {
    std::cerr << "invalid options\n";
    return 2;
  }
  return txmod::bench::Run(options, argv[0]);
}
