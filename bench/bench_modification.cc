// E6 — static compilation vs dynamic optimize+translate (Section 6.2).
//
// The paper's operational argument: integrity rules should be optimized
// and translated once, at definition time, into integrity programs
// (Definition 6.3); the literal Algorithm 5.1 re-runs TrOptRS on every
// modification. This bench measures ModT itself (no execution) for both
// paths, sweeping the rule-catalog size and the transaction length.
// Expected shape: static wins, and the gap grows with the rule count.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/core/modifier.h"

namespace txmod::bench {
namespace {

/// A catalog of `n` domain rules on fk_rel (every one triggered by the
/// insert workload, the worst case for modification cost).
void DefineRules(core::IntegritySubsystem* ics, int n) {
  for (int i = 0; i < n; ++i) {
    TXMOD_BENCH_CHECK_OK(ics->DefineConstraint(
        StrCat("amount_ge_", i),
        StrCat("forall x (x in fk_rel implies x.amount >= ", -1 - i, ")")));
  }
}

algebra::Transaction MakeTxn(int statements) {
  algebra::Transaction txn;
  for (int i = 0; i < statements; ++i) {
    txn.program.statements.push_back(algebra::Statement::Insert(
        "fk_rel",
        algebra::RelExpr::Literal(
            {Tuple({Value::Int(1'000'000 + i), Value::String("k0"),
                    Value::Double(2.5)})},
            3)));
  }
  return txn;
}

void BM_ModifyStatic(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(10, 10);
  core::IntegritySubsystem ics(&db);
  DefineRules(&ics, static_cast<int>(state.range(0)));
  const algebra::Transaction txn = MakeTxn(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    core::ModifyStats stats;
    auto modified = ics.Modify(txn, &stats);
    TXMOD_BENCH_CHECK_OK(modified.status());
    benchmark::DoNotOptimize(modified);
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
  state.counters["stmts"] = static_cast<double>(state.range(1));
}

void BM_ModifyDynamic(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(10, 10);
  core::IntegritySubsystem ics(&db);
  DefineRules(&ics, static_cast<int>(state.range(0)));
  const algebra::Transaction txn = MakeTxn(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto modified = core::ModifyTransactionDynamic(
        txn, ics.rules(), db.schema(),
        core::OptimizationLevel::kDifferential);
    TXMOD_BENCH_CHECK_OK(modified.status());
    benchmark::DoNotOptimize(modified);
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
  state.counters["stmts"] = static_cast<double>(state.range(1));
}

BENCHMARK(BM_ModifyStatic)
    ->ArgsProduct({{1, 4, 16, 64}, {1, 8, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ModifyDynamic)
    ->ArgsProduct({{1, 4, 16, 64}, {1, 8, 64}})
    ->Unit(benchmark::kMicrosecond);

// Detection latency ablation: immediate vs deferred check placement on a
// violating transaction (first statement offends, many follow). Deferred
// placement (the paper's ModP) executes the whole batch before the check
// aborts it; immediate placement aborts right after the first statement.
void RunDetectionLatency(benchmark::State& state, bool immediate) {
  const int tail_statements = 64;
  Database db = MakeKeyFkDatabase(1000, 10000);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint(
      "domain", "forall x (x in fk_rel implies x.amount >= 0)"));
  algebra::Transaction txn;
  txn.program.statements.push_back(algebra::Statement::Insert(
      "fk_rel",
      algebra::RelExpr::Literal(
          {Tuple({Value::Int(999'999), Value::String("k0"),
                  Value::Double(-1.0)})},
          3)));
  for (int i = 0; i < tail_statements; ++i) {
    std::vector<Tuple> batch;
    for (int j = 0; j < 50; ++j) {
      batch.push_back(Tuple({Value::Int(1'000'000 + i * 50 + j),
                             Value::String("k1"), Value::Double(1.0)}));
    }
    txn.program.statements.push_back(algebra::Statement::Insert(
        "fk_rel", algebra::RelExpr::Literal(std::move(batch), 3)));
  }
  Result<algebra::Transaction> modified =
      immediate ? core::ModifyTransactionImmediate(txn, ics.compiled())
                : ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (result->committed) {
      state.SkipWithError("violation not detected");
      return;
    }
  }
}
void BM_DetectionDeferred(benchmark::State& state) {
  RunDetectionLatency(state, /*immediate=*/false);
}
void BM_DetectionImmediate(benchmark::State& state) {
  RunDetectionLatency(state, /*immediate=*/true);
}
BENCHMARK(BM_DetectionDeferred)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DetectionImmediate)->Unit(benchmark::kMicrosecond);

// The repeated-differential-check workload: the steady-state cost the
// paper's whole argument rests on. Every iteration is one complete
// transaction round: modify the user's insert batch (appends the compiled
// differential checks), then execute it — inserts plus the residual
// semijoin/antijoin tests of dplus(fk_rel) against key_rel. The check
// probes the same base relation transaction after transaction, which is
// exactly what the relation-level equi-key index accelerates.
void BM_DifferentialCommit(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  Database db = MakeKeyFkDatabase(keys, keys * 10);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  int id_base = 10'000'000;
  for (auto _ : state) {
    const algebra::Transaction txn = MakeFkInsertBatch(batch, keys, id_base);
    id_base += batch;
    auto modified = ics.Modify(txn);
    TXMOD_BENCH_CHECK_OK(modified.status());
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("valid batch unexpectedly aborted");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["key_tuples"] = static_cast<double>(keys);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_DifferentialCommit)
    ->ArgsProduct({{1000, 5000}, {10, 100, 1000}})
    ->Unit(benchmark::kMicrosecond);

// Rule definition cost (parse + analyze + compile + graph validation) —
// the price paid once, at definition time, to make the static path cheap.
void BM_DefineRule(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(10, 10);
  int i = 0;
  core::IntegritySubsystem ics(&db);
  for (auto _ : state) {
    TXMOD_BENCH_CHECK_OK(ics.DefineConstraint(
        StrCat("r", i), RefIntConstraint()));
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(ics.DropRule(StrCat("r", i)));
    ++i;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DefineRule)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
