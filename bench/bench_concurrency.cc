// Concurrent transaction manager benchmarks.
//
// BM_ConcurrentCommit — N client threads run key/fk transactions through
// TxnManager sessions (snapshot execution + first-committer-wins
// validation), sweeping the conflict rate: each thread's transactions
// touch a small shared key set with probability conflict_pct/100 and
// thread-private fk ids otherwise. Reported: committed transactions per
// second (items_per_second), plus conflict/retry counters. No WAL — this
// series isolates the OCC pipeline.
//
// BM_GroupCommitFsync — N threads commit tiny write transactions through
// a WAL with sync_commits on; fsyncs batch across concurrent committers
// (group commit). Reported: commits per second and the measured
// fsyncs-per-commit ratio (the batching factor; 1.0 means no batching,
// lower is better).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/common/vfs.h"
#include "src/relational/wal.h"
#include "src/txn/txn_manager.h"

namespace txmod::bench {
namespace {

constexpr int kKeys = 500;
constexpr int kFks = 5000;
constexpr int kSharedKeys = 16;
constexpr int kTxnsPerThreadPerIter = 50;

struct ManagerFixture {
  Database db;
  std::unique_ptr<core::IntegritySubsystem> ics;
  std::unique_ptr<txn::TxnManager> manager;

  explicit ManagerFixture(txn::TxnManagerOptions options = {}) {
    db = MakeKeyFkDatabase(kKeys, kFks);
    AddUnreferencedKeys(&db, kSharedKeys);
    ics = std::make_unique<core::IntegritySubsystem>(&db);
    TXMOD_BENCH_CHECK_OK(ics->DefineConstraint("domain", DomainConstraint()));
    TXMOD_BENCH_CHECK_OK(ics->DefineConstraint("refint", RefIntConstraint()));
    auto created = txn::TxnManager::Create(ics.get(), std::move(options));
    TXMOD_BENCH_CHECK_OK(created.status());
    manager = std::move(*created);
  }
};

/// A thread-private fk insert (ids disjoint across threads and
/// iterations) or, with probability pct/100, a contended write: delete
/// or re-insert one fk tuple from a small shared id range. Overlapping
/// footprints on those tuples are real write-write conflicts (and net
/// writes, so commit records publish them) — the conflict knob.
algebra::Transaction MakeWorkTxn(int* next_id, unsigned* rng,
                                 int conflict_pct) {
  *rng = *rng * 1664525u + 1013904223u;
  const bool contended =
      static_cast<int>((*rng >> 16) % 100) < conflict_pct;
  algebra::Transaction txn;
  if (contended) {
    const int id = static_cast<int>((*rng >> 8) % (2 * kSharedKeys));
    Tuple fk_tuple({Value::Int(id), Value::String(StrCat("k", id % kKeys)),
                    Value::Double(1.0 + id % 10)});
    const bool del = ((*rng >> 4) & 1) != 0;
    if (del) {
      txn.program.statements.push_back(algebra::Statement::Delete(
          "fk_rel", algebra::RelExpr::Literal({fk_tuple}, 3)));
    } else {
      txn.program.statements.push_back(algebra::Statement::Insert(
          "fk_rel", algebra::RelExpr::Literal({fk_tuple}, 3)));
    }
  } else {
    txn.program.statements.push_back(algebra::Statement::Insert(
        "fk_rel",
        algebra::RelExpr::Literal(
            {Tuple({Value::Int((*next_id)++),
                    Value::String(StrCat("k", *rng % kKeys)),
                    Value::Double(2.5)})},
            3)));
  }
  return txn;
}

void BM_ConcurrentCommit(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int conflict_pct = static_cast<int>(state.range(1));
  ManagerFixture f;

  uint64_t committed_total = 0;
  for (auto _ : state) {
    std::atomic<uint64_t> committed{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        int next_id = 1'000'000 + t * 1'000'000 +
                      static_cast<int>(state.iterations()) * 1000;
        unsigned rng = 12345u * static_cast<unsigned>(t + 1);
        for (int i = 0; i < kTxnsPerThreadPerIter; ++i) {
          auto result = f.manager->Run(
              MakeWorkTxn(&next_id, &rng, conflict_pct));
          if (result.ok() && result->committed) {
            committed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    committed_total += committed.load();
  }
  const txn::TxnManagerStats stats = f.manager->stats();
  state.SetItemsProcessed(static_cast<int64_t>(committed_total));
  state.counters["conflicts"] = static_cast<double>(stats.conflicts);
  state.counters["commits"] = static_cast<double>(stats.commits);
  state.counters["conflict_rate"] =
      stats.commits + stats.conflicts > 0
          ? static_cast<double>(stats.conflicts) /
                static_cast<double>(stats.commits + stats.conflicts)
          : 0.0;
}

BENCHMARK(BM_ConcurrentCommit)
    ->ArgNames({"threads", "conflict_pct"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({4, 10})
    ->Args({4, 50})
    ->Args({8, 50})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The first-write cost pin: one session inserts ONE tuple into a
/// relation of `tuples` rows and commits. With overlay_sessions the
/// session's first write layers an O(1) overlay over the shared
/// snapshot; without it, it pays the legacy O(|R|) copy-on-write clone —
/// so the clone series scales with the relation while the overlay series
/// stays flat. The cloned_tuples_per_txn counter (from CowStats) shows
/// the copies directly.
void BM_SessionFirstWrite(benchmark::State& state) {
  const int tuples = static_cast<int>(state.range(0));
  const bool overlay = state.range(1) != 0;
  Database db = MakeKeyFkDatabase(kKeys, tuples);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  txn::TxnManagerOptions options;
  options.overlay_sessions = overlay;
  auto created = txn::TxnManager::Create(&ics, options);
  TXMOD_BENCH_CHECK_OK(created.status());
  auto manager = std::move(*created);

  int next_id = 100'000'000;
  CowStats::Reset();
  uint64_t committed = 0;
  for (auto _ : state) {
    auto session = manager->Begin();
    algebra::Transaction txn;
    txn.program.statements.push_back(algebra::Statement::Insert(
        "fk_rel",
        algebra::RelExpr::Literal(
            {Tuple({Value::Int(next_id++),
                    Value::String(StrCat("k", next_id % kKeys)),
                    Value::Double(2.5)})},
            3)));
    auto executed = session->Execute(txn);
    auto result = session->Commit();
    if (executed.ok() && result.ok() && result->committed) ++committed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  const double iters =
      state.iterations() > 0 ? static_cast<double>(state.iterations()) : 1.0;
  state.counters["cloned_tuples_per_txn"] =
      static_cast<double>(CowStats::cloned_tuples.load()) / iters;
  state.counters["overlays_per_txn"] =
      static_cast<double>(CowStats::overlays_created.load()) / iters;
}

BENCHMARK(BM_SessionFirstWrite)
    ->ArgNames({"tuples", "overlay"})
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_GroupCommitFsync(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      StrCat("txmod_bench_wal_", ::getpid(), "_", threads, "_", shards);
  std::filesystem::create_directories(dir);
  txn::TxnManagerOptions options;
  options.wal_path = (dir / "wal.log").string();
  options.checkpoint_path = (dir / "checkpoint.db").string();
  options.sync_commits = true;
  options.wal_shards = static_cast<uint32_t>(shards);
  ManagerFixture f(options);

  uint64_t committed_total = 0;
  for (auto _ : state) {
    std::atomic<uint64_t> committed{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        int next_id = 10'000'000 + t * 1'000'000 +
                      static_cast<int>(state.iterations()) * 1000;
        unsigned rng = 99991u * static_cast<unsigned>(t + 1);
        for (int i = 0; i < kTxnsPerThreadPerIter; ++i) {
          auto result =
              f.manager->Run(MakeWorkTxn(&next_id, &rng, 0));
          if (result.ok() && result->committed) {
            committed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    committed_total += committed.load();
  }
  const txn::TxnManagerStats stats = f.manager->stats();
  state.SetItemsProcessed(static_cast<int64_t>(committed_total));
  state.counters["fsyncs"] = static_cast<double>(stats.wal_fsyncs);
  state.counters["fsyncs_per_commit"] =
      stats.commits > 0 ? static_cast<double>(stats.wal_fsyncs) /
                              static_cast<double>(stats.commits)
                        : 0.0;

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

BENCHMARK(BM_GroupCommitFsync)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// WAL appends routed through the Vfs seam: the POSIX default versus the
/// fault injector with no faults armed. The delta is the pure cost of the
/// indirection plus the injector's bookkeeping (per-op counters, durable
/// snapshots on sync) — the price every fault-campaign iteration pays.
void BM_WalAppendThroughVfs(benchmark::State& state) {
  const bool injected = state.range(0) != 0;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      StrCat("txmod_bench_vfs_", ::getpid(), "_", injected);
  std::filesystem::create_directories(dir);
  const std::string wal_path = (dir / "wal.log").string();

  FaultInjectingVfs injector;
  Vfs* vfs = injected ? &injector : Vfs::Default();
  uint64_t appended = 0;
  {
    auto wal = WriteAheadLog::Open(wal_path, vfs);
    TXMOD_BENCH_CHECK_OK(wal.status());
    WalRecord rec;
    rec.version = 1;
    rec.deltas.push_back(WalDelta{
        "fk_rel",
        {Tuple({Value::Int(1), Value::String("k1"), Value::Double(2.5)})},
        {}});
    for (auto _ : state) {
      rec.version = ++appended;
      auto lsn = wal->Append(rec);
      TXMOD_BENCH_CHECK_OK(lsn.status());
      if (appended % 64 == 0) TXMOD_BENCH_CHECK_OK(wal->Sync(*lsn));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(appended));

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

BENCHMARK(BM_WalAppendThroughVfs)
    ->ArgNames({"injected"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN();
