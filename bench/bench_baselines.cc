// E7 + E8 — enforcement strategy comparison.
//
// E7 (Section 5.2.1 ablation): differential transaction modification vs
// full-relation checking, sweeping relation size at a fixed small batch.
// Expected shape: differential cost tracks the batch (flat in relation
// size once past hashing effects); full-check cost grows linearly with
// the relation; the advantage is roughly |R| / |ΔR|.
//
// E8 (Section 1 comparison): transaction modification vs post-hoc
// checking vs Stonebraker-style query modification on the same insert
// workload. TM and post-hoc make identical decisions (tested in
// tests/baseline_test.cc); query modification silently filters and only
// supports domain rules — it is the cheapest *and* the least capable.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/baseline/posthoc_checker.h"
#include "src/baseline/query_modification.h"
#include "src/txn/executor.h"

namespace txmod::bench {
namespace {

constexpr int kBatch = 100;

// --- E7: differential vs full check, relation size sweep -------------------

void RunScaling(benchmark::State& state, core::OptimizationLevel level) {
  const int fks = static_cast<int>(state.range(0));
  const int keys = fks / 10;
  Database db = MakeKeyFkDatabase(keys, fks);
  core::SubsystemOptions options;
  options.optimization = level;
  core::IntegritySubsystem ics(&db, options);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  const algebra::Transaction txn = MakeFkInsertBatch(kBatch, keys);
  auto modified = ics.Modify(txn);
  TXMOD_BENCH_CHECK_OK(modified.status());
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));
  for (auto _ : state) {
    auto result = txn::ExecuteTransaction(*modified, &db);
    TXMOD_BENCH_CHECK_OK(result.status());
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
  state.counters["fk_tuples"] = fks;
  state.counters["batch"] = kBatch;
}

void BM_ScalingDifferential(benchmark::State& state) {
  RunScaling(state, core::OptimizationLevel::kDifferential);
}
void BM_ScalingFullCheck(benchmark::State& state) {
  RunScaling(state, core::OptimizationLevel::kNone);
}

BENCHMARK(BM_ScalingDifferential)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_ScalingFullCheck)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --- E8: strategy comparison on one configuration ---------------------------

constexpr int kE8Keys = 1000;
constexpr int kE8Fks = 10000;

void BM_StrategyTxnModification(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(kE8Keys, kE8Fks);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  const algebra::Transaction txn = MakeFkInsertBatch(kBatch, kE8Keys);
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));
  for (auto _ : state) {
    auto result = ics.Execute(txn);  // modify + execute
    TXMOD_BENCH_CHECK_OK(result.status());
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
}

void BM_StrategyPostHoc(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(kE8Keys, kE8Fks);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("refint", RefIntConstraint()));
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  baseline::PostHocChecker checker(&ics);
  const algebra::Transaction txn = MakeFkInsertBatch(kBatch, kE8Keys);
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));
  for (auto _ : state) {
    auto result = checker.Execute(txn);
    TXMOD_BENCH_CHECK_OK(result.status());
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
}

void BM_StrategyQueryModification(benchmark::State& state) {
  Database db = MakeKeyFkDatabase(kE8Keys, kE8Fks);
  core::IntegritySubsystem ics(&db);
  // Query modification can only express the domain rule; the referential
  // rule would land in UnsupportedRules() — an enforcement gap, which is
  // exactly the comparison the paper draws (Section 1).
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("domain", DomainConstraint()));
  baseline::QueryModifier qm(&ics);
  const algebra::Transaction txn = MakeFkInsertBatch(kBatch, kE8Keys);
  algebra::Transaction undo;
  undo.program.statements.push_back(algebra::Statement::Delete(
      "fk_rel", txn.program.statements[0].expr));
  for (auto _ : state) {
    auto result = qm.Execute(txn);
    TXMOD_BENCH_CHECK_OK(result.status());
    state.PauseTiming();
    TXMOD_BENCH_CHECK_OK(txn::ExecuteTransaction(undo, &db).status());
    state.ResumeTiming();
  }
  state.SetLabel("domain rules only (refint inexpressible)");
}

BENCHMARK(BM_StrategyTxnModification)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_StrategyPostHoc)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_StrategyQueryModification)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
