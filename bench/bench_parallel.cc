// E5 — parallel enforcement scaling on the simulated POOMA machine
// ([7, 9], cited by Section 7; the 8-node numbers of the paper are
// measured on this configuration).
//
// Sweeps node count {1, 2, 4, 8} for both constraint classes on the
// 5000/50000(+5000) workload. Reported metric: the deterministic
// simulated makespan (see src/parallel/cost_model.h), pinned to
// simulate mode so the checked-in baseline is host-independent.
// Expected shape:
//  * domain constraint: near-ideal speedup (fragment-local);
//  * referential constraint with key/foreign-key fragmentation:
//    node-local checks, speedup close to domain;
//  * referential with round-robin fragmentation: sub-linear (pays
//    redistribution), the gap growing with node count.
//
// BM_ParallelThreadedWallVsSim is the measured counterpart: the same
// refint workload on the real worker pool, sweeping partitions ×
// workers, with wall-clock (ParallelStats::measured_us) reported next
// to the simulated makespan for the same plan. Read the wall column
// against the machine's core count in the JSON's hardware stamp.

#include "benchmark/benchmark.h"
#include "bench/workload.h"
#include "src/parallel/executor.h"

namespace txmod::bench {
namespace {

using parallel::FragmentationKind;
using parallel::FragmentationScheme;

enum class Constraint { kDomain, kRefInt };
enum class Placement { kKeyFk, kRoundRobin };

/// The simulated series must not depend on the machine they run on:
/// force simulate mode regardless of the core count of this host.
parallel::ParallelOptions SimulateOnly() {
  parallel::ParallelOptions options;
  options.use_threads = false;
  return options;
}

void RunParallel(benchmark::State& state, Constraint constraint,
                 Placement placement) {
  const int nodes = static_cast<int>(state.range(0));
  const int keys = 5000, fks = 50000, batch = 5000;

  Database db = MakeKeyFkDatabase(keys, fks);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint(
      "c", constraint == Constraint::kDomain ? DomainConstraint()
                                             : RefIntConstraint()));
  const algebra::Transaction plain = MakeFkInsertBatch(batch, keys);
  auto modified = ics.Modify(plain);
  TXMOD_BENCH_CHECK_OK(modified.status());

  std::map<std::string, FragmentationScheme> schemes;
  if (placement == Placement::kKeyFk) {
    schemes = {{"fk_rel", FragmentationScheme{FragmentationKind::kHash, 1}},
               {"key_rel", FragmentationScheme{FragmentationKind::kHash, 0}}};
  } else {
    schemes = {
        {"fk_rel", FragmentationScheme{FragmentationKind::kRoundRobin, 0}},
        {"key_rel", FragmentationScheme{FragmentationKind::kRoundRobin, 0}}};
  }

  double check_ms = 0;
  double total_ms = 0;
  uint64_t transferred = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pdb = parallel::ParallelDatabase::Partition(db, schemes, nodes);
    TXMOD_BENCH_CHECK_OK(pdb.status());
    // The insert routing alone: its makespan is subtracted so the series
    // isolates *enforcement* cost, which is what the paper reports
    // ("checking ... after the insertion ...").
    auto insert_only = parallel::ParallelExecutor(
        &*pdb, SimulateOnly()).Execute(plain);
    TXMOD_BENCH_CHECK_OK(insert_only.status());
    const double insert_ms = insert_only->stats.simulated_us() / 1000.0;
    auto pdb2 = parallel::ParallelDatabase::Partition(db, schemes, nodes);
    TXMOD_BENCH_CHECK_OK(pdb2.status());
    state.ResumeTiming();
    parallel::ParallelExecutor exec(&*pdb2, SimulateOnly());
    auto result = exec.Execute(*modified);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("unexpected abort");
      return;
    }
    total_ms = result->stats.simulated_us() / 1000.0;
    check_ms = total_ms - insert_ms;
    transferred = result->stats.tuples_transferred();
  }
  // The series the harness exists for: simulated enforcement makespan per
  // node count (total transaction makespan alongside).
  state.counters["check_sim_ms"] = check_ms;
  state.counters["total_sim_ms"] = total_ms;
  state.counters["transferred"] = static_cast<double>(transferred);
  state.counters["nodes"] = nodes;
}

// Join-heavy enforcement: deleting keys triggers the DEL(key_rel) check,
// whose core is semijoin[l.ref = r.key](fk_rel, dminus(key_rel)) — a real
// per-fragment join of the 50k-tuple fk side against the deleted-key
// delta. Unlike the insert-path checks (projection differences answered
// by set membership), this workload lives or dies by the per-fragment
// join algorithm, so its *wall-clock* time is the series that records
// the hash-join-vs-nested-loop difference.
void BM_ParallelJoinHeavyDelete(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int keys = 5000, fks = 50000, batch = 500;

  Database db = MakeKeyFkDatabase(keys, fks);
  AddUnreferencedKeys(&db, batch);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("c", RefIntConstraint()));
  const algebra::Transaction plain = MakeKeyDeleteBatch(batch);
  auto modified = ics.Modify(plain);
  TXMOD_BENCH_CHECK_OK(modified.status());

  const std::map<std::string, FragmentationScheme> schemes = {
      {"fk_rel", FragmentationScheme{FragmentationKind::kHash, 1}},
      {"key_rel", FragmentationScheme{FragmentationKind::kHash, 0}}};

  double total_ms = 0;
  uint64_t transferred = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pdb = parallel::ParallelDatabase::Partition(db, schemes, nodes);
    TXMOD_BENCH_CHECK_OK(pdb.status());
    state.ResumeTiming();
    parallel::ParallelExecutor exec(&*pdb, SimulateOnly());
    auto result = exec.Execute(*modified);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("unexpected abort");
      return;
    }
    total_ms = result->stats.simulated_us() / 1000.0;
    transferred = result->stats.tuples_transferred();
  }
  state.counters["total_sim_ms"] = total_ms;
  state.counters["transferred"] = static_cast<double>(transferred);
  state.counters["nodes"] = nodes;
}

// The measured counterpart of the simulated series above: the refint
// insert workload on the real worker pool, swept over partitions
// (state.range(0)) × pool workers (state.range(1)). Two columns land in
// the counters — total_wall_ms (sum of measured phase wall-clock,
// ParallelStats::measured_us) and total_sim_ms (the POOMA-model
// makespan for the identical plan) — so the report reads as a direct
// wall-vs-simulated comparison per configuration. Round-robin placement
// on purpose: the checks must redistribute, so the wall column includes
// real traffic through the bounded exchange queues (exchange_batches
// counts the batches that actually crossed them; key/fk placement
// would leave it at 0).
void BM_ParallelThreadedWallVsSim(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const int keys = 5000, fks = 50000, batch = 5000;

  Database db = MakeKeyFkDatabase(keys, fks);
  core::IntegritySubsystem ics(&db);
  TXMOD_BENCH_CHECK_OK(ics.DefineConstraint("c", RefIntConstraint()));
  const algebra::Transaction plain = MakeFkInsertBatch(batch, keys);
  auto modified = ics.Modify(plain);
  TXMOD_BENCH_CHECK_OK(modified.status());

  const std::map<std::string, FragmentationScheme> schemes = {
      {"fk_rel", FragmentationScheme{FragmentationKind::kRoundRobin, 0}},
      {"key_rel", FragmentationScheme{FragmentationKind::kRoundRobin, 0}}};

  parallel::ParallelOptions options;
  options.use_threads = true;
  options.num_workers = workers;

  double wall_ms = 0;
  double sim_ms = 0;
  uint64_t exchange_batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pdb = parallel::ParallelDatabase::Partition(db, schemes, nodes);
    TXMOD_BENCH_CHECK_OK(pdb.status());
    state.ResumeTiming();
    parallel::ParallelExecutor exec(&*pdb, options);
    auto result = exec.Execute(*modified);
    TXMOD_BENCH_CHECK_OK(result.status());
    if (!result->committed) {
      state.SkipWithError("unexpected abort");
      return;
    }
    wall_ms = result->stats.measured_us() / 1000.0;
    sim_ms = result->stats.simulated_us() / 1000.0;
    exchange_batches = result->stats.exchange_batches();
  }
  state.counters["total_wall_ms"] = wall_ms;
  state.counters["total_sim_ms"] = sim_ms;
  state.counters["exchange_batches"] = static_cast<double>(exchange_batches);
  state.counters["nodes"] = nodes;
  state.counters["workers"] = static_cast<double>(workers);
}

void BM_ParallelDomain(benchmark::State& state) {
  RunParallel(state, Constraint::kDomain, Placement::kKeyFk);
}
void BM_ParallelRefIntKeyFk(benchmark::State& state) {
  RunParallel(state, Constraint::kRefInt, Placement::kKeyFk);
}
void BM_ParallelRefIntRoundRobin(benchmark::State& state) {
  RunParallel(state, Constraint::kRefInt, Placement::kRoundRobin);
}

BENCHMARK(BM_ParallelJoinHeavyDelete)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_ParallelDomain)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ParallelRefIntKeyFk)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ParallelRefIntRoundRobin)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
// partitions × pool workers. Workers past the partition count can still
// help via morsel stealing within a shard's queue; workers past the
// machine's cores only oversubscribe (read against the hardware stamp).
BENCHMARK(BM_ParallelThreadedWallVsSim)
    ->ArgsProduct({{2, 4, 8}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace txmod::bench

TXMOD_BENCH_MAIN()
