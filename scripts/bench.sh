#!/usr/bin/env bash
# Benchmark runner: builds Release and runs the bench binaries with JSON
# reports (the harness's --json flag; see bench/workload.h).
#
#   scripts/bench.sh                  run bench_table1 + bench_modification
#                                     + bench_parallel + bench_concurrency
#                                     + bench_server, JSON under
#                                     build/bench-results/
#   scripts/bench.sh --all            run every bench_* binary
#   scripts/bench.sh --smoke          one tiny pass of every bench_* binary
#                                     (CI bit-rot gate; ~seconds per binary)
#   scripts/bench.sh --update-baseline
#                                     also refresh BENCH_table1.json,
#                                     BENCH_parallel.json,
#                                     BENCH_concurrency.json and
#                                     BENCH_server.json at the repo
#                                     root from this machine's run
#
# The checked-in BENCH_table1.json (Table 1 workloads, plus the
# BM_AdHocRepeatedShape shaped-plan-cache series: cached vs
# fresh-compile-every-statement), BENCH_parallel.json (E5 scaling +
# the join-heavy enforcement series) and BENCH_concurrency.json
# (BM_ConcurrentCommit thread/conflict sweeps, BM_GroupCommitFsync
# sharded group-commit batching factors) and BENCH_server.json (the
# bench_server network load driver: commits/sec and p50/p99 request
# latency over loopback TCP, durability-verified) are the recorded
# baselines;
# their "context" blocks name the machine and compiler they were
# captured on — read thread-scaling numbers against that machine's core
# count, not in the absolute.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=default
update_baseline=0
for arg in "$@"; do
  case "$arg" in
    --all) mode=all ;;
    --smoke) mode=smoke ;;
    --update-baseline) update_baseline=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [ "$update_baseline" = 1 ] && [ "$mode" = smoke ]; then
  echo "refusing to refresh BENCH_table1.json from a --smoke run" >&2
  echo "(smoke timings are abbreviated; rerun without --smoke)" >&2
  exit 2
fi

jobs=$(nproc 2>/dev/null || echo 2)
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"

if ! ls build/bench/bench_* >/dev/null 2>&1; then
  echo "no bench binaries (Google Benchmark not installed?)" >&2
  exit 1
fi

outdir=build/bench-results
mkdir -p "$outdir"

# Stamps hardware metadata into a bench JSON's "context" block: core
# count, CPU model, and the 1-minute load average at capture time.
# Thread-scaling numbers are meaningless without the first two, and the
# load average flags runs taken on a busy machine (treat those with
# suspicion). Every JSON written by this script carries the stamp —
# including the checked-in BENCH_*.json baselines on --update-baseline.
stamp_hardware() {
  local json="$1"
  python3 - "$json" <<'PY'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

model = "unknown"
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                model = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

report.setdefault("context", {})["hardware"] = {
    "nproc": os.cpu_count() or 0,
    "cpu_model": model,
    "load_avg_1m": round(os.getloadavg()[0], 2),
}
with open(path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
PY
}

run_one() {
  local bin="$1"; shift
  local name
  name=$(basename "$bin")
  echo "== $name =="
  "$bin" --json="$outdir/$name.json" "$@"
  stamp_hardware "$outdir/$name.json"
}

case "$mode" in
  smoke)
    # One abbreviated pass per binary: enough to catch crashes, stale
    # APIs, and bit-rotted workloads without burning CI minutes.
    for bin in build/bench/bench_*; do
      run_one "$bin" --benchmark_min_time=0.01
    done
    ;;
  all)
    for bin in build/bench/bench_*; do
      run_one "$bin"
    done
    ;;
  default)
    run_one build/bench/bench_table1
    run_one build/bench/bench_modification
    run_one build/bench/bench_parallel
    run_one build/bench/bench_concurrency
    # The network load driver verifies durability (recover + check every
    # acked commit) on top of recording throughput/latency.
    run_one build/bench/bench_server --verify
    ;;
esac

if [ "$update_baseline" = 1 ]; then
  cp "$outdir/bench_table1.json" BENCH_table1.json
  cp "$outdir/bench_parallel.json" BENCH_parallel.json
  cp "$outdir/bench_concurrency.json" BENCH_concurrency.json
  cp "$outdir/bench_server.json" BENCH_server.json
  echo "refreshed BENCH_table1.json, BENCH_parallel.json," \
       "BENCH_concurrency.json and BENCH_server.json"
fi

echo "JSON reports in $outdir/"
