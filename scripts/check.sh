#!/usr/bin/env bash
# Tier-1 verify plus the sanitizer gate, exactly as CI runs them:
#   Release build + ctest, then Debug+ASan/UBSan build + ctest.
#
#   --faults   additionally run the deep fault-injection campaign
#              (randomized storage-fault schedules + crash/recovery
#              oracle) at CI-stress depth. Slow; off by default.
set -euo pipefail
cd "$(dirname "$0")/.."

run_faults=0
for arg in "$@"; do
  case "$arg" in
    --faults) run_faults=1 ;;
    *)
      echo "usage: $0 [--faults]" >&2
      exit 2
      ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)

echo "== Release =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== Debug + ASan/UBSan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DENABLE_SANITIZERS=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

if [[ "$run_faults" -eq 1 ]]; then
  echo "== Fault-injection campaign (deep sweep) =="
  TXMOD_FAULT_ITERATIONS="${TXMOD_FAULT_ITERATIONS:-200}" \
    ctest --test-dir build --output-on-failure \
          -R "fault_campaign_test|vfs_test|recovery_test"
fi

echo "All checks passed."
