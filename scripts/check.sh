#!/usr/bin/env bash
# Tier-1 verify plus the sanitizer gate, exactly as CI runs them:
#   Release build + ctest, then Debug+ASan/UBSan build + ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

echo "== Release =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== Debug + ASan/UBSan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DENABLE_SANITIZERS=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "All checks passed."
