# Warning and sanitizer configuration shared by every txmod target.
#
# ENABLE_SANITIZERS=ON compiles and links the whole tree (library, tests,
# benches, examples) with AddressSanitizer + UndefinedBehaviorSanitizer,
# with recovery disabled so any report fails the run — the tier-1 gate is
# "ctest green under sanitizers", not "sanitizers printed something".
#
# ENABLE_TSAN=ON builds with ThreadSanitizer instead (mutually exclusive
# with ASan): the parallel executor runs the shared physical operators on
# real std::threads when ParallelOptions::use_threads is set, and the
# threaded test paths (parallel_test, serial_parallel_oracle_test) are the
# coverage. CI runs this configuration as its own job.
#
# ENABLE_COVERAGE=ON instruments the whole tree with gcov profiling
# (--coverage); the CI coverage job runs ctest in such a tree and
# summarizes with gcovr. Use a Debug build so lines are not optimized
# away.

set(TXMOD_WARNINGS -Wall -Wextra -Wshadow -Wpedantic)

if(ENABLE_SANITIZERS AND ENABLE_TSAN)
  message(FATAL_ERROR
          "ENABLE_SANITIZERS (ASan/UBSan) and ENABLE_TSAN are mutually "
          "exclusive; configure two build trees instead")
endif()

if(ENABLE_SANITIZERS)
  set(TXMOD_SAN_FLAGS
      -fsanitize=address,undefined
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  add_compile_options(${TXMOD_SAN_FLAGS})
  add_link_options(${TXMOD_SAN_FLAGS})
endif()

if(ENABLE_TSAN)
  set(TXMOD_SAN_FLAGS
      -fsanitize=thread
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  add_compile_options(${TXMOD_SAN_FLAGS})
  add_link_options(${TXMOD_SAN_FLAGS})
endif()

if(ENABLE_COVERAGE)
  add_compile_options(--coverage -fprofile-update=atomic)
  add_link_options(--coverage)
endif()
