# Warning and sanitizer configuration shared by every txmod target.
#
# ENABLE_SANITIZERS=ON compiles and links the whole tree (library, tests,
# benches, examples) with AddressSanitizer + UndefinedBehaviorSanitizer,
# with recovery disabled so any report fails the run — the tier-1 gate is
# "ctest green under sanitizers", not "sanitizers printed something".

set(TXMOD_WARNINGS -Wall -Wextra -Wshadow -Wpedantic)

if(ENABLE_SANITIZERS)
  set(TXMOD_SAN_FLAGS
      -fsanitize=address,undefined
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  add_compile_options(${TXMOD_SAN_FLAGS})
  add_link_options(${TXMOD_SAN_FLAGS})
endif()
