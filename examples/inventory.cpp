// Inventory: compensating rules as cascading repairs.
//
// An order system where integrity rules do work instead of just saying
// no (the RL THEN-programs of Definition 4.7):
//   * orders must reference existing products — deleting a product
//     *cascades*: a compensating rule deletes the orphaned orders;
//   * order quantities are positive — aborting rule;
//   * the order book is bounded by an aggregate constraint.
//
// The cascade shows recursive transaction modification at work: the
// user's delete triggers the cascade rule, whose own delete would
// re-trigger analysis — the rule is declared NONTRIGGERING (Definition
// 6.2) since deleting orders cannot break any other rule here.
//
// Run:  ./build/examples/inventory

#include <cstdlib>
#include <iostream>

#include "src/core/subsystem.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Status;

#define CHECK_OK(expr)                                     \
  do {                                                     \
    const Status _st = (expr);                             \
    if (!_st.ok()) {                                       \
      std::cerr << "FATAL: " << _st << "\n";               \
      std::exit(1);                                        \
    }                                                      \
  } while (false)

void Report(const char* label, const txmod::Result<txmod::txn::TxnResult>& r,
            const Database& db) {
  CHECK_OK(r.status());
  std::cout << label << ": "
            << (r->committed ? "committed" : "aborted — " + r->abort_reason)
            << "\n  products: " << (*db.Find("products"))->ToString()
            << "\n  orders:   " << (*db.Find("orders"))->ToString() << "\n\n";
}

}  // namespace

int main() {
  Database db;
  CHECK_OK(db.CreateRelation(RelationSchema(
      "products", {Attribute{"sku", AttrType::kString},
                   Attribute{"label", AttrType::kString},
                   Attribute{"stock", AttrType::kInt}})));
  CHECK_OK(db.CreateRelation(RelationSchema(
      "orders", {Attribute{"id", AttrType::kInt},
                 Attribute{"sku", AttrType::kString},
                 Attribute{"qty", AttrType::kInt}})));

  txmod::core::IntegritySubsystem ics(&db);

  // New orders must reference existing products (abort).
  CHECK_OK(ics.DefineRule(
      "order_needs_product",
      "WHEN INS(orders) "
      "IF NOT forall o (o in orders implies exists p (p in products and "
      "o.sku = p.sku)) "
      "THEN abort"));

  // Deleting a product cascades to its orders (compensate). The action
  // deletes exactly the orphans: orders whose sku has no product.
  CHECK_OK(ics.DefineRule(
      "cascade_orders",
      "WHEN DEL(products) "
      "IF NOT forall o (o in orders implies exists p (p in products and "
      "o.sku = p.sku)) "
      "THEN NONTRIGGERING "
      "delete(orders, antijoin[l.sku = r.sku](orders, products))"));

  // Sanity rules.
  CHECK_OK(ics.DefineConstraint(
      "positive_qty", "forall o (o in orders implies o.qty > 0)"));
  CHECK_OK(ics.DefineConstraint(
      "stock_not_negative",
      "forall p (p in products implies p.stock >= 0)"));
  CHECK_OK(ics.DefineConstraint("order_book_bound", "cnt(orders) <= 100"));

  std::cout << "=== Triggering graph (dot) ===\n"
            << ics.graph().ToDot() << "\n";

  Report("stock products",
         ics.ExecuteText("insert(products, {(\"A1\", \"anvil\", 3), "
                         "(\"B2\", \"bellows\", 5), "
                         "(\"C3\", \"crowbar\", 2)});"),
         db);

  Report("place orders",
         ics.ExecuteText("insert(orders, {(1, \"A1\", 2), (2, \"B2\", 1), "
                         "(3, \"A1\", 1)});"),
         db);

  Report("order for unknown product",
         ics.ExecuteText("insert(orders, {(4, \"Z9\", 1)});"), db);

  Report("zero-quantity order",
         ics.ExecuteText("insert(orders, {(5, \"B2\", 0)});"), db);

  // The cascade: discontinuing the anvil silently removes orders 1 and 3.
  Report("discontinue product A1 (cascades to its orders)",
         ics.ExecuteText(
             "delete(products, select[sku = \"A1\"](products));"),
         db);

  // Stock update through the domain rule.
  Report("receive stock",
         ics.ExecuteText(
             "update(products, sku = \"C3\", stock := stock + 10);"),
         db);
  Report("ship more than we have",
         ics.ExecuteText(
             "update(products, sku = \"B2\", stock := stock - 9);"),
         db);
  return 0;
}
