// Quickstart: the paper's running example (Examples 4.1, 4.2 and 5.1).
//
// Builds the beer database, defines the domain rule R1 and the
// compensating referential rule R2, shows the modified transaction the
// subsystem produces for the paper's insert, and executes it.
//
// Run:  ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "src/algebra/parser.h"
#include "src/core/subsystem.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Status;

#define CHECK_OK(expr)                                     \
  do {                                                     \
    const Status _st = (expr);                             \
    if (!_st.ok()) {                                       \
      std::cerr << "FATAL: " << _st << "\n";               \
      std::exit(1);                                        \
    }                                                      \
  } while (false)

}  // namespace

int main() {
  // --- Example 4.1: the beer database schema -------------------------------
  Database db;
  CHECK_OK(db.CreateRelation(RelationSchema(
      "beer", {Attribute{"name", AttrType::kString},
               Attribute{"type", AttrType::kString},
               Attribute{"brewery", AttrType::kString},
               Attribute{"alcohol", AttrType::kDouble}})));
  CHECK_OK(db.CreateRelation(RelationSchema(
      "brewery", {Attribute{"name", AttrType::kString},
                  Attribute{"city", AttrType::kString},
                  Attribute{"country", AttrType::kString}})));

  // The paper presents the basic technique in Section 5; kNone reproduces
  // its translations verbatim (production use would keep kDifferential).
  txmod::core::SubsystemOptions options;
  options.optimization = txmod::core::OptimizationLevel::kNone;
  txmod::core::IntegritySubsystem ics(&db, options);

  // --- Example 4.2: rules R1 and R2 ----------------------------------------
  CHECK_OK(ics.DefineRule("R1",
                          "WHEN INS(beer) "
                          "IF NOT forall x (x in beer implies "
                          "x.alcohol >= 0) "
                          "THEN abort"));
  CHECK_OK(ics.DefineRule(
      "R2",
      "WHEN INS(beer), DEL(brewery) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN temp := project[brewery](beer) - project[name](brewery); "
      "     insert(brewery, project[brewery, null, null](temp))"));

  std::cout << "=== Rule catalog ===\n";
  for (const auto& rule : ics.rules()) {
    std::cout << "-- " << rule.name << ":\n" << rule.ToString() << "\n";
  }

  // --- Example 5.1: the user transaction -----------------------------------
  txmod::algebra::AlgebraParser parser(&db.schema());
  auto txn = parser.ParseTransaction(
      "begin "
      "insert(beer, {(\"exportgold\", \"stout\", \"guineken\", 6.0)}); "
      "end");
  CHECK_OK(txn.status());

  std::cout << "=== User transaction ===\n" << txn->ToString() << "\n";

  auto modified = ics.Modify(*txn);
  CHECK_OK(modified.status());
  std::cout << "=== Modified transaction (Example 5.1) ===\n"
            << modified->ToString() << "\n";

  // --- execute ---------------------------------------------------------------
  auto result = ics.Execute(*txn);
  CHECK_OK(result.status());
  std::cout << "=== Execution ===\n"
            << (result->committed ? "committed" : "aborted: ")
            << result->abort_reason << "\n"
            << "logical time: " << db.logical_time() << "\n"
            << "beer:    " << (*db.Find("beer"))->ToString() << "\n"
            << "brewery: " << (*db.Find("brewery"))->ToString() << "\n\n";

  // A violating insert: the domain rule aborts the whole transaction.
  auto bad = ics.ExecuteText(
      "insert(beer, {(\"freezer burn\", \"ice\", \"guineken\", -0.5)});");
  CHECK_OK(bad.status());
  std::cout << "=== Violating transaction ===\n"
            << (bad->committed ? "committed (?)" : "aborted: ")
            << bad->abort_reason << "\n"
            << "beer unchanged: " << (*db.Find("beer"))->size()
            << " tuple(s), logical time still " << db.logical_time()
            << "\n";
  return 0;
}
