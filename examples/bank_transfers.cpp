// Bank transfers: state AND transition constraints on one schema.
//
// Demonstrates the constraint kinds of Section 3:
//   * a state constraint  — balances are never negative (Definition 3.1);
//   * a transition constraint — ordinary transfers preserve the total
//     balance, expressed against the pre-transaction state old(account)
//     (Definition 3.3; old(R) is an auxiliary relation per Section 4.1);
//   * a cardinality constraint via CNT.
//
// Run:  ./build/examples/bank_transfers

#include <cstdlib>
#include <iostream>

#include "src/core/subsystem.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Status;

#define CHECK_OK(expr)                                     \
  do {                                                     \
    const Status _st = (expr);                             \
    if (!_st.ok()) {                                       \
      std::cerr << "FATAL: " << _st << "\n";               \
      std::exit(1);                                        \
    }                                                      \
  } while (false)

void Report(const char* label, const txmod::Result<txmod::txn::TxnResult>& r,
            const Database& db) {
  CHECK_OK(r.status());
  std::cout << label << ": "
            << (r->committed ? "committed" : "aborted — " + r->abort_reason)
            << "\n  account: " << (*db.Find("account"))->ToString() << "\n";
}

}  // namespace

int main() {
  Database db;
  CHECK_OK(db.CreateRelation(RelationSchema(
      "account", {Attribute{"id", AttrType::kInt},
                  Attribute{"owner", AttrType::kString},
                  Attribute{"balance", AttrType::kDouble}})));

  txmod::core::IntegritySubsystem ics(&db);

  // State constraint: no overdrafts. Declarative only — the subsystem
  // derives the trigger set {INS(account)} and an aborting rule.
  CHECK_OK(ics.DefineConstraint(
      "no_overdraft",
      "forall a (a in account implies a.balance >= 0)"));

  // Transition constraint: the total balance is invariant (transfers move
  // money, they do not create it). SUM over old(account) is the paper's
  // pre-transaction auxiliary relation.
  CHECK_OK(ics.DefineRule(
      "conservation",
      "WHEN INS(account), DEL(account) "
      "IF NOT sum(account, balance) = sum(old(account), balance) "
      "THEN abort"));

  // Cardinality constraint: the branch supports at most 4 accounts.
  CHECK_OK(ics.DefineConstraint("capacity", "cnt(account) <= 4"));

  std::cout << "=== Rules ===\n";
  for (const auto& rule : ics.rules()) {
    std::cout << "-- " << rule.name << " [" << rule.triggers.ToString()
              << "]\n";
  }
  std::cout << "\n";

  // Seed accounts. Opening accounts would violate "conservation", so the
  // initial funding uses a subsystem without that rule — in a real bank
  // the conservation rule applies to the transfer workload, not to cash
  // deposits; modelling deposits is left to the reader.
  {
    txmod::core::IntegritySubsystem bootstrap(&db);
    CHECK_OK(bootstrap.DefineConstraint(
        "no_overdraft",
        "forall a (a in account implies a.balance >= 0)"));
    auto seeded = bootstrap.ExecuteText(
        "insert(account, {(1, \"ada\", 100.0), (2, \"grace\", 50.0), "
        "(3, \"edsger\", 10.0)});");
    Report("seed", seeded, db);
  }
  std::cout << "\n";

  // A correct transfer: ada sends grace 40. The update statement has
  // delete+insert semantics, so both balance rules are triggered.
  Report("transfer 40 ada->grace",
         ics.ExecuteText("update(account, id = 1, balance := balance - 40); "
                         "update(account, id = 2, balance := balance + 40);"),
         db);
  std::cout << "\n";

  // Overdraft: edsger only has 10. The no_overdraft alarm aborts; both
  // updates roll back atomically.
  Report("transfer 25 edsger->ada (overdraft)",
         ics.ExecuteText("update(account, id = 3, balance := balance - 25); "
                         "update(account, id = 1, balance := balance + 25);"),
         db);
  std::cout << "\n";

  // Money printing: one-sided credit violates conservation.
  Report("credit 1000 to grace out of thin air",
         ics.ExecuteText(
             "update(account, id = 2, balance := balance + 1000.0);"),
         db);
  std::cout << "\n";

  // Capacity: a fourth account fits, a fifth does not.
  Report("open 4th account",
         ics.ExecuteText("update(account, id = 1, balance := balance - 5); "
                         "insert(account, {(4, \"kurt\", 5.0)});"),
         db);
  Report("open 5th account",
         ics.ExecuteText("update(account, id = 1, balance := balance - 1); "
                         "insert(account, {(5, \"alan\", 1.0)});"),
         db);
  return 0;
}
