// An interactive integrity-control shell.
//
// Drives the whole subsystem from a prompt: define relations, constraints
// and rules, inspect the catalog and the triggering graph, preview the
// modified form of a transaction (ModT), and execute transactions with
// enforcement.
//
//   $ ./build/examples/repl
//   txmod> relation beer(name string, type string, brewery string,
//          alcohol double)
//   txmod> constraint domain forall x (x in beer implies x.alcohol >= 0)
//   txmod> run insert(beer, {("pils", "lager", "heineken", 5.0)});
//   committed (logical time 1)
//   txmod> help
//
// Also scriptable:  ./build/examples/repl < script.txt
//
// Network modes (src/net wire protocol):
//   repl --serve PORT [--setup FILE]   serve the database over TCP; FILE
//                                      holds REPL commands (relations,
//                                      constraints) run before listening
//   repl --connect HOST PORT           interactive client against a
//                                      served instance (begin/execute/
//                                      commit/abort/run/show/policy/stats)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/algebra/parser.h"
#include "src/common/lexer.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/relational/persist.h"
#include "src/txn/txn_manager.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Result;
using txmod::Status;
using txmod::StrCat;

constexpr char kHelp[] = R"(commands:
  relation NAME(attr type, ...)   create a relation (types: int, double,
                                  string)
  constraint NAME FORMULA         declarative CL constraint (aborting rule,
                                  generated triggers)
  rule NAME RULE_TEXT             full RL rule: [WHEN ...] IF NOT ... THEN ...
  drop NAME                       drop a rule
  rules                           print the rule catalog
  graph                           print the triggering graph (dot)
  modify TXN                      show the modified transaction (no execute)
  run TXN                         modify + execute a transaction
  show NAME                       print a relation's contents
  schema                          list relations
  save PATH                       checkpoint the database to a file
  load PATH                       restore a checkpoint (replaces data;
                                  rules must be re-defined)
  \stats                          transaction-manager counters (commits,
                                  conflicts, retries, degraded state, COW)
  help                            this text
  quit                            exit
)";

/// Parses "name(attr type, attr type, ...)".
Result<RelationSchema> ParseRelationDecl(const std::string& text) {
  TXMOD_ASSIGN_OR_RETURN(auto tokens, txmod::Tokenize(text));
  std::size_t i = 0;
  if (tokens[i].kind != txmod::TokenKind::kIdent) {
    return Status::InvalidArgument("expected relation name");
  }
  const std::string name = tokens[i++].text;
  if (!tokens[i].IsOp("(")) {
    return Status::InvalidArgument("expected '(' after relation name");
  }
  ++i;
  std::vector<Attribute> attrs;
  while (true) {
    if (tokens[i].kind != txmod::TokenKind::kIdent) {
      return Status::InvalidArgument("expected attribute name");
    }
    const std::string attr = tokens[i++].text;
    if (tokens[i].kind != txmod::TokenKind::kIdent) {
      return Status::InvalidArgument("expected attribute type");
    }
    const std::string type = txmod::AsciiToLower(tokens[i++].text);
    AttrType at;
    if (type == "int") {
      at = AttrType::kInt;
    } else if (type == "double") {
      at = AttrType::kDouble;
    } else if (type == "string") {
      at = AttrType::kString;
    } else {
      return Status::InvalidArgument(StrCat("unknown type ", type));
    }
    attrs.push_back(Attribute{attr, at});
    if (tokens[i].IsOp(",")) {
      ++i;
      continue;
    }
    break;
  }
  if (!tokens[i].IsOp(")")) {
    return Status::InvalidArgument("expected ')' closing the attribute list");
  }
  ++i;
  if (tokens[i].kind != txmod::TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected input after ')'");
  }
  return RelationSchema(name, std::move(attrs));
}

class Repl {
 public:
  Repl() : ics_(&db_) { RebuildManager(); }

  void Run() {
    std::string line;
    std::cout << "txmod — transaction modification integrity subsystem\n"
              << "type 'help' for commands\n";
    while (true) {
      std::cout << "txmod> " << std::flush;
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    std::cout << "bye\n";
  }

  /// Runs a file of REPL commands (no prompt); stops at the first I/O
  /// failure. Used by --serve to define schema + constraints up front.
  Status RunScript(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      return Status::InvalidArgument(StrCat("cannot open script: ", path));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line.rfind("--", 0) == 0) continue;
      std::cout << "txmod> " << line << "\n";
      if (!Dispatch(line)) break;
    }
    return Status::OK();
  }

  txmod::txn::TxnManager* manager() { return manager_.get(); }

 private:
  static std::pair<std::string, std::string> SplitCommand(
      const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);
    const std::size_t start = rest.find_first_not_of(" \t");
    rest = start == std::string::npos ? "" : rest.substr(start);
    return {txmod::AsciiToLower(command), rest};
  }

  void Report(const Status& st) {
    if (st.ok()) {
      std::cout << "ok\n";
    } else {
      std::cout << "error: " << st.ToString() << "\n";
    }
  }

  bool Dispatch(const std::string& line) {
    const auto [command, rest] = SplitCommand(line);
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      std::cout << kHelp;
    } else if (command == "relation") {
      auto schema = ParseRelationDecl(rest);
      if (!schema.ok()) {
        Report(schema.status());
        return true;
      }
      Report(db_.CreateRelation(*schema));
    } else if (command == "constraint") {
      const auto [name, formula] = SplitCommand(rest);
      Report(manager_->DefineConstraint(name, formula));
    } else if (command == "rule") {
      const auto [name, rule] = SplitCommand(rest);
      Report(manager_->DefineRule(name, rule));
    } else if (command == "drop") {
      Report(manager_->DropRule(rest));
    } else if (command == "rules") {
      for (const auto& rule : ics_.rules()) {
        std::cout << "-- " << rule.name << "\n" << rule.ToString() << "\n";
      }
      for (const std::string& warning : ics_.ValidateRuleTriggers()) {
        std::cout << "warning: " << warning << "\n";
      }
    } else if (command == "graph") {
      std::cout << ics_.graph().ToDot();
    } else if (command == "schema") {
      for (const auto& rs : db_.schema().relations()) {
        std::cout << rs.ToString() << "\n";
      }
    } else if (command == "save") {
      Report(txmod::SaveDatabaseToFile(db_, rest));
    } else if (command == "load") {
      auto loaded = txmod::LoadDatabaseFromFile(rest);
      if (!loaded.ok()) {
        Report(loaded.status());
        return true;
      }
      db_ = *std::move(loaded);
      ics_ = txmod::core::IntegritySubsystem(&db_);
      RebuildManager();
      std::cout << "ok (rule catalog cleared; re-define rules)\n";
    } else if (command == "show") {
      auto rel = db_.Find(rest);
      if (!rel.ok()) {
        Report(rel.status());
        return true;
      }
      std::cout << (*rel)->ToString(64) << "\n";
    } else if (command == "modify") {
      txmod::algebra::AlgebraParser parser(&db_.schema());
      auto txn = parser.ParseTransaction(rest);
      if (!txn.ok()) {
        Report(txn.status());
        return true;
      }
      auto modified = ics_.Modify(*txn);
      if (!modified.ok()) {
        Report(modified.status());
        return true;
      }
      std::cout << modified->ToString();
    } else if (command == "run") {
      auto result = manager_->RunText(rest);
      if (!result.ok()) {
        Report(result.status());
        return true;
      }
      if (result->committed) {
        std::cout << "committed (logical time " << db_.logical_time()
                  << ")\n";
      } else {
        std::cout << "aborted: " << result->abort_reason << "\n";
      }
    } else if (command == "\\stats" || command == "stats") {
      PrintStats();
    } else {
      std::cout << "unknown command '" << command
                << "' — type 'help' for the list\n";
    }
    return true;
  }

  /// (Re)wraps the current subsystem in a volatile transaction manager —
  /// no WAL; the REPL persists via explicit `save`.
  void RebuildManager() {
    auto created = txmod::txn::TxnManager::Create(&ics_, {});
    if (!created.ok()) {
      std::cout << "fatal: " << created.status().ToString() << "\n";
      std::exit(1);
    }
    manager_ = std::move(*created);
  }

  void PrintStats() {
    const txmod::txn::TxnManagerStats s = manager_->stats();
    std::cout << "commits              " << s.commits << "\n"
              << "  read-only          " << s.readonly_commits << "\n"
              << "conflicts            " << s.conflicts << "\n"
              << "integrity aborts     " << s.integrity_aborts << "\n"
              << "retries              " << s.retries << "\n"
              << "backoff sleeps       " << s.backoff_sleeps << "\n"
              << "deadlines exceeded   " << s.deadlines_exceeded << "\n"
              << "wal appends          " << s.wal_appends << "\n"
              << "wal fsyncs           " << s.wal_fsyncs << "\n"
              << "checkpoints          " << s.checkpoints << "\n"
              << "wal failures         " << s.wal_failures << "\n"
              << "wal reopens          " << s.wal_reopens << "\n"
              << "writer rejections    " << s.unavailable_rejections << "\n"
              << "degraded             " << (s.degraded ? "yes" : "no");
    if (s.degraded) std::cout << " (" << s.degraded_cause << ")";
    std::cout << "\n"
              << "cow relation clones  " << s.cow_relation_clones << "\n"
              << "cow overlays         " << s.cow_overlays_created << "\n"
              << "cow overlay merges   " << s.cow_overlay_merges << "\n"
              << "cow overlay collapses " << s.cow_overlay_collapses << "\n";
  }

  Database db_;
  txmod::core::IntegritySubsystem ics_;
  std::unique_ptr<txmod::txn::TxnManager> manager_;
};

/// --serve: expose the REPL's database over the wire protocol. Blocks
/// until stdin closes (or `quit` is typed), then shuts down cleanly.
int Serve(uint16_t port, const std::string& setup_path) {
  Repl repl;
  if (!setup_path.empty()) {
    const Status st = repl.RunScript(setup_path);
    if (!st.ok()) {
      std::cerr << "setup failed: " << st.ToString() << "\n";
      return 1;
    }
  }
  txmod::net::ServerOptions options;
  options.port = port;
  txmod::net::Server server(repl.manager(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "serve failed: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "serving on 127.0.0.1:" << server.port()
            << " — press enter or close stdin to stop\n"
            << std::flush;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit" || line.empty()) break;
  }
  server.Stop();
  std::cout << "server stopped\n";
  return 0;
}

/// --connect: a thin interactive client. Commands map 1:1 onto protocol
/// verbs; multi-word bodies pass through verbatim.
int ConnectRepl(const std::string& host, uint16_t port) {
  auto connected = txmod::net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 1;
  }
  txmod::net::Client client = std::move(*connected);
  std::cout << "connected to " << host << ":" << port
            << " — begin | execute TXN | commit | abort | run TXN | "
               "show REL | policy k=v ... | stats | ping | quit\n";
  const auto print_outcome = [](const txmod::net::Outcome& outcome) {
    if (outcome.committed) {
      std::cout << "committed (version " << outcome.commit_version
                << ", attempts " << outcome.attempts << ")\n";
    } else if (outcome.conflict) {
      std::cout << "conflict after " << outcome.attempts << " attempts\n";
    } else {
      std::cout << "aborted: " << outcome.reason << "\n";
    }
  };
  const auto report = [](const Status& st) {
    if (st.ok()) {
      std::cout << "ok\n";
    } else {
      std::cout << "error: " << st.ToString() << "\n";
    }
  };
  std::string line;
  while (true) {
    std::cout << "txmod@" << host << "> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);
    const std::size_t start = rest.find_first_not_of(" \t");
    rest = start == std::string::npos ? "" : rest.substr(start);
    command = txmod::AsciiToLower(command);
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "ping") {
      report(client.Ping());
    } else if (command == "begin") {
      auto version = client.Begin();
      if (version.ok()) {
        std::cout << "session open at version " << *version << "\n";
      } else {
        report(version.status());
      }
    } else if (command == "execute") {
      auto outcome = client.Execute(rest);
      outcome.ok() ? print_outcome(*outcome) : report(outcome.status());
    } else if (command == "commit") {
      auto outcome = client.Commit();
      outcome.ok() ? print_outcome(*outcome) : report(outcome.status());
    } else if (command == "abort") {
      report(client.Abort());
    } else if (command == "run") {
      auto outcome = client.Run(rest);
      outcome.ok() ? print_outcome(*outcome) : report(outcome.status());
    } else if (command == "show") {
      auto shown = client.Show(rest);
      if (shown.ok()) {
        std::cout << *shown;
      } else {
        report(shown.status());
      }
    } else if (command == "policy") {
      std::map<std::string, std::string> fields;
      std::istringstream args(rest);
      std::string pair;
      bool parsed = true;
      while (args >> pair) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::cout << "error: expected key=value, got '" << pair << "'\n";
          parsed = false;
          break;
        }
        fields[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
      if (parsed) report(client.SetPolicy(fields));
    } else if (command == "stats") {
      auto stats = client.Stats();
      if (!stats.ok()) {
        report(stats.status());
      } else {
        for (const auto& [key, value] : *stats) {
          std::cout << key << " = " << value << "\n";
        }
      }
    } else {
      std::cout << "unknown command '" << command << "'\n";
    }
    if (!client.connected()) {
      std::cout << "connection lost\n";
      return 1;
    }
  }
  std::cout << "bye\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--serve") {
    const int port = std::atoi(argv[2]);
    std::string setup;
    if (argc >= 5 && std::string(argv[3]) == "--setup") setup = argv[4];
    return Serve(static_cast<uint16_t>(port), setup);
  }
  if (argc >= 4 && std::string(argv[1]) == "--connect") {
    return ConnectRepl(argv[2],
                       static_cast<uint16_t>(std::atoi(argv[3])));
  }
  if (argc > 1) {
    std::cerr << "usage: " << argv[0]
              << " [--serve PORT [--setup FILE] | --connect HOST PORT]\n";
    return 2;
  }
  Repl repl;
  repl.Run();
  return 0;
}
