// An interactive integrity-control shell.
//
// Drives the whole subsystem from a prompt: define relations, constraints
// and rules, inspect the catalog and the triggering graph, preview the
// modified form of a transaction (ModT), and execute transactions with
// enforcement.
//
//   $ ./build/examples/repl
//   txmod> relation beer(name string, type string, brewery string,
//          alcohol double)
//   txmod> constraint domain forall x (x in beer implies x.alcohol >= 0)
//   txmod> run insert(beer, {("pils", "lager", "heineken", 5.0)});
//   committed (logical time 1)
//   txmod> help
//
// Also scriptable:  ./build/examples/repl < script.txt

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/algebra/parser.h"
#include "src/common/lexer.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/relational/persist.h"
#include "src/txn/txn_manager.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Result;
using txmod::Status;
using txmod::StrCat;

constexpr char kHelp[] = R"(commands:
  relation NAME(attr type, ...)   create a relation (types: int, double,
                                  string)
  constraint NAME FORMULA         declarative CL constraint (aborting rule,
                                  generated triggers)
  rule NAME RULE_TEXT             full RL rule: [WHEN ...] IF NOT ... THEN ...
  drop NAME                       drop a rule
  rules                           print the rule catalog
  graph                           print the triggering graph (dot)
  modify TXN                      show the modified transaction (no execute)
  run TXN                         modify + execute a transaction
  show NAME                       print a relation's contents
  schema                          list relations
  save PATH                       checkpoint the database to a file
  load PATH                       restore a checkpoint (replaces data;
                                  rules must be re-defined)
  \stats                          transaction-manager counters (commits,
                                  conflicts, retries, degraded state, COW)
  help                            this text
  quit                            exit
)";

/// Parses "name(attr type, attr type, ...)".
Result<RelationSchema> ParseRelationDecl(const std::string& text) {
  TXMOD_ASSIGN_OR_RETURN(auto tokens, txmod::Tokenize(text));
  std::size_t i = 0;
  if (tokens[i].kind != txmod::TokenKind::kIdent) {
    return Status::InvalidArgument("expected relation name");
  }
  const std::string name = tokens[i++].text;
  if (!tokens[i].IsOp("(")) {
    return Status::InvalidArgument("expected '(' after relation name");
  }
  ++i;
  std::vector<Attribute> attrs;
  while (true) {
    if (tokens[i].kind != txmod::TokenKind::kIdent) {
      return Status::InvalidArgument("expected attribute name");
    }
    const std::string attr = tokens[i++].text;
    if (tokens[i].kind != txmod::TokenKind::kIdent) {
      return Status::InvalidArgument("expected attribute type");
    }
    const std::string type = txmod::AsciiToLower(tokens[i++].text);
    AttrType at;
    if (type == "int") {
      at = AttrType::kInt;
    } else if (type == "double") {
      at = AttrType::kDouble;
    } else if (type == "string") {
      at = AttrType::kString;
    } else {
      return Status::InvalidArgument(StrCat("unknown type ", type));
    }
    attrs.push_back(Attribute{attr, at});
    if (tokens[i].IsOp(",")) {
      ++i;
      continue;
    }
    break;
  }
  if (!tokens[i].IsOp(")")) {
    return Status::InvalidArgument("expected ')' closing the attribute list");
  }
  ++i;
  if (tokens[i].kind != txmod::TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected input after ')'");
  }
  return RelationSchema(name, std::move(attrs));
}

class Repl {
 public:
  Repl() : ics_(&db_) { RebuildManager(); }

  void Run() {
    std::string line;
    std::cout << "txmod — transaction modification integrity subsystem\n"
              << "type 'help' for commands\n";
    while (true) {
      std::cout << "txmod> " << std::flush;
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    std::cout << "bye\n";
  }

 private:
  static std::pair<std::string, std::string> SplitCommand(
      const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);
    const std::size_t start = rest.find_first_not_of(" \t");
    rest = start == std::string::npos ? "" : rest.substr(start);
    return {txmod::AsciiToLower(command), rest};
  }

  void Report(const Status& st) {
    if (st.ok()) {
      std::cout << "ok\n";
    } else {
      std::cout << "error: " << st.ToString() << "\n";
    }
  }

  bool Dispatch(const std::string& line) {
    const auto [command, rest] = SplitCommand(line);
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      std::cout << kHelp;
    } else if (command == "relation") {
      auto schema = ParseRelationDecl(rest);
      if (!schema.ok()) {
        Report(schema.status());
        return true;
      }
      Report(db_.CreateRelation(*schema));
    } else if (command == "constraint") {
      const auto [name, formula] = SplitCommand(rest);
      Report(manager_->DefineConstraint(name, formula));
    } else if (command == "rule") {
      const auto [name, rule] = SplitCommand(rest);
      Report(manager_->DefineRule(name, rule));
    } else if (command == "drop") {
      Report(manager_->DropRule(rest));
    } else if (command == "rules") {
      for (const auto& rule : ics_.rules()) {
        std::cout << "-- " << rule.name << "\n" << rule.ToString() << "\n";
      }
      for (const std::string& warning : ics_.ValidateRuleTriggers()) {
        std::cout << "warning: " << warning << "\n";
      }
    } else if (command == "graph") {
      std::cout << ics_.graph().ToDot();
    } else if (command == "schema") {
      for (const auto& rs : db_.schema().relations()) {
        std::cout << rs.ToString() << "\n";
      }
    } else if (command == "save") {
      Report(txmod::SaveDatabaseToFile(db_, rest));
    } else if (command == "load") {
      auto loaded = txmod::LoadDatabaseFromFile(rest);
      if (!loaded.ok()) {
        Report(loaded.status());
        return true;
      }
      db_ = *std::move(loaded);
      ics_ = txmod::core::IntegritySubsystem(&db_);
      RebuildManager();
      std::cout << "ok (rule catalog cleared; re-define rules)\n";
    } else if (command == "show") {
      auto rel = db_.Find(rest);
      if (!rel.ok()) {
        Report(rel.status());
        return true;
      }
      std::cout << (*rel)->ToString(64) << "\n";
    } else if (command == "modify") {
      txmod::algebra::AlgebraParser parser(&db_.schema());
      auto txn = parser.ParseTransaction(rest);
      if (!txn.ok()) {
        Report(txn.status());
        return true;
      }
      auto modified = ics_.Modify(*txn);
      if (!modified.ok()) {
        Report(modified.status());
        return true;
      }
      std::cout << modified->ToString();
    } else if (command == "run") {
      auto result = manager_->RunText(rest);
      if (!result.ok()) {
        Report(result.status());
        return true;
      }
      if (result->committed) {
        std::cout << "committed (logical time " << db_.logical_time()
                  << ")\n";
      } else {
        std::cout << "aborted: " << result->abort_reason << "\n";
      }
    } else if (command == "\\stats" || command == "stats") {
      PrintStats();
    } else {
      std::cout << "unknown command '" << command
                << "' — type 'help' for the list\n";
    }
    return true;
  }

  /// (Re)wraps the current subsystem in a volatile transaction manager —
  /// no WAL; the REPL persists via explicit `save`.
  void RebuildManager() {
    auto created = txmod::txn::TxnManager::Create(&ics_, {});
    if (!created.ok()) {
      std::cout << "fatal: " << created.status().ToString() << "\n";
      std::exit(1);
    }
    manager_ = std::move(*created);
  }

  void PrintStats() {
    const txmod::txn::TxnManagerStats s = manager_->stats();
    std::cout << "commits              " << s.commits << "\n"
              << "  read-only          " << s.readonly_commits << "\n"
              << "conflicts            " << s.conflicts << "\n"
              << "integrity aborts     " << s.integrity_aborts << "\n"
              << "retries              " << s.retries << "\n"
              << "backoff sleeps       " << s.backoff_sleeps << "\n"
              << "deadlines exceeded   " << s.deadlines_exceeded << "\n"
              << "wal appends          " << s.wal_appends << "\n"
              << "wal fsyncs           " << s.wal_fsyncs << "\n"
              << "checkpoints          " << s.checkpoints << "\n"
              << "wal failures         " << s.wal_failures << "\n"
              << "wal reopens          " << s.wal_reopens << "\n"
              << "writer rejections    " << s.unavailable_rejections << "\n"
              << "degraded             " << (s.degraded ? "yes" : "no");
    if (s.degraded) std::cout << " (" << s.degraded_cause << ")";
    std::cout << "\n"
              << "cow relation clones  " << s.cow_relation_clones << "\n"
              << "cow overlays         " << s.cow_overlays_created << "\n"
              << "cow overlay merges   " << s.cow_overlay_merges << "\n"
              << "cow overlay collapses " << s.cow_overlay_collapses << "\n";
  }

  Database db_;
  txmod::core::IntegritySubsystem ics_;
  std::unique_ptr<txmod::txn::TxnManager> manager_;
};

}  // namespace

int main() {
  Repl repl;
  repl.Run();
  return 0;
}
