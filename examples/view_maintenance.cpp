// Materialized view maintenance through transaction modification.
//
// Section 7 of the paper: "transaction modification can be used for
// purposes other than integrity control as well, like materialized view
// maintenance". This example maintains region_totals(region, total) over
// sales(id, region, amount):
//
//   * the *staleness condition* uses the transaction differentials
//     dplus(sales)/dminus(sales) — auxiliary relations of Section 4.1 —
//     so it is violated exactly when the transaction changed sales;
//   * the *maintenance action* recomputes the view with a grouped
//     aggregate (an algebra extension, so the rule is built with the C++
//     builder API rather than the textual RL syntax);
//   * the action is NONTRIGGERING (Definition 6.2): view refreshes must
//     not re-trigger analysis.
//
// Run:  ./build/examples/view_maintenance

#include <cstdlib>
#include <iostream>

#include "src/calculus/analyzer.h"
#include "src/calculus/parser.h"
#include "src/core/subsystem.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Status;
namespace algebra = txmod::algebra;

#define CHECK_OK(expr)                                     \
  do {                                                     \
    const Status _st = (expr);                             \
    if (!_st.ok()) {                                       \
      std::cerr << "FATAL: " << _st << "\n";               \
      std::exit(1);                                        \
    }                                                      \
  } while (false)

void Show(const char* label, const Database& db) {
  std::cout << label << "\n  sales:         "
            << (*db.Find("sales"))->ToString() << "\n  region_totals: "
            << (*db.Find("region_totals"))->ToString() << "\n\n";
}

}  // namespace

int main() {
  Database db;
  CHECK_OK(db.CreateRelation(RelationSchema(
      "sales", {Attribute{"id", AttrType::kInt},
                Attribute{"region", AttrType::kString},
                Attribute{"amount", AttrType::kInt}})));
  CHECK_OK(db.CreateRelation(RelationSchema(
      "region_totals", {Attribute{"region", AttrType::kString},
                        Attribute{"total", AttrType::kInt}})));

  txmod::core::IntegritySubsystem ics(&db);

  // Staleness condition: "no sales row was inserted or deleted". Written
  // directly against the differentials; any real change violates it and
  // fires the maintenance action.
  auto condition = txmod::calculus::ParseFormula(
      "forall s (s in dplus(sales) implies 1 = 0) and "
      "forall t (t in dminus(sales) implies 1 = 0)");
  CHECK_OK(condition.status());
  auto analyzed = txmod::calculus::AnalyzeFormula(*condition, db.schema());
  CHECK_OK(analyzed.status());

  // Maintenance action: full refresh with a grouped SUM.
  //   delete(region_totals, region_totals);
  //   insert(region_totals, gamma_{region; sum(amount)}(sales));
  algebra::Program refresh;
  refresh.statements.push_back(algebra::Statement::Delete(
      "region_totals", algebra::RelExpr::Base("region_totals")));
  refresh.statements.push_back(algebra::Statement::Insert(
      "region_totals",
      algebra::RelExpr::GroupAggregate({1}, algebra::AggFunc::kSum, 2,
                                       algebra::RelExpr::Base("sales"))));
  refresh.non_triggering = true;

  txmod::rules::IntegrityRule rule;
  rule.name = "maintain_region_totals";
  rule.condition = *std::move(analyzed);
  rule.triggers = txmod::rules::TriggerSet{
      txmod::rules::Trigger{txmod::rules::UpdateType::kIns, "sales"},
      txmod::rules::Trigger{txmod::rules::UpdateType::kDel, "sales"}};
  rule.action_kind = txmod::rules::ActionKind::kCompensate;
  rule.action = std::move(refresh);
  rule.action_non_triggering = true;
  CHECK_OK(ics.DefineRule(std::move(rule)));

  Show("=== initial (both empty) ===", db);

  auto r1 = ics.ExecuteText(
      "insert(sales, {(1, \"north\", 10), (2, \"north\", 5), "
      "(3, \"south\", 7)});");
  CHECK_OK(r1.status());
  Show("=== after initial sales ===", db);

  auto r2 = ics.ExecuteText("insert(sales, {(4, \"south\", 3)});");
  CHECK_OK(r2.status());
  Show("=== after one more southern sale ===", db);

  auto r3 = ics.ExecuteText("delete(sales, select[region = \"north\"]("
                            "sales));");
  CHECK_OK(r3.status());
  Show("=== after dropping the north ===", db);

  // A read-only transaction does not touch sales: the view rule is not
  // even appended (trigger sets, Algorithm 5.2).
  auto r4 = ics.ExecuteText("t := select[total > 5](region_totals); "
                            "alarm(t - t);");
  CHECK_OK(r4.status());
  Show("=== after a read-only transaction (no refresh ran) ===", db);
  return 0;
}
