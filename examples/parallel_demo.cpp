// Parallel enforcement on the simulated POOMA machine.
//
// Reproduces the flavour of the paper's prototype (Section 7 / [7]):
// relations fragmented across nodes, beer on its foreign-key attribute
// and brewery on its key attribute, so the referential-integrity check
// runs without any tuple crossing the interconnect. A second, badly
// fragmented configuration shows the communication cost appearing.
//
// Run:  ./build/examples/parallel_demo

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/algebra/parser.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/parallel/executor.h"

namespace {

using txmod::AttrType;
using txmod::Attribute;
using txmod::Database;
using txmod::RelationSchema;
using txmod::Status;
using txmod::StrCat;
namespace parallel = txmod::parallel;

#define CHECK_OK(expr)                                     \
  do {                                                     \
    const Status _st = (expr);                             \
    if (!_st.ok()) {                                       \
      std::cerr << "FATAL: " << _st << "\n";               \
      std::exit(1);                                        \
    }                                                      \
  } while (false)

constexpr int kBreweries = 64;
constexpr int kBeersPerBrewery = 32;

Database MakeData() {
  Database db;
  CHECK_OK(db.CreateRelation(RelationSchema(
      "beer", {Attribute{"name", AttrType::kString},
               Attribute{"type", AttrType::kString},
               Attribute{"brewery", AttrType::kString},
               Attribute{"alcohol", AttrType::kDouble}})));
  CHECK_OK(db.CreateRelation(RelationSchema(
      "brewery", {Attribute{"name", AttrType::kString},
                  Attribute{"city", AttrType::kString},
                  Attribute{"country", AttrType::kString}})));
  auto* brewery = *db.FindMutable("brewery");
  auto* beer = *db.FindMutable("beer");
  for (int b = 0; b < kBreweries; ++b) {
    const std::string name = StrCat("brewery", b);
    brewery->Insert({txmod::Value::String(name),
                     txmod::Value::String("city"),
                     txmod::Value::String("nl")});
    for (int i = 0; i < kBeersPerBrewery; ++i) {
      beer->Insert({txmod::Value::String(StrCat("beer", b, "_", i)),
                    txmod::Value::String("lager"),
                    txmod::Value::String(name),
                    txmod::Value::Double(4.0 + i % 7)});
    }
  }
  return db;
}

}  // namespace

int main() {
  Database db = MakeData();
  std::cout << "beer: " << (*db.Find("beer"))->size()
            << " tuples, brewery: " << (*db.Find("brewery"))->size()
            << " tuples\n\n";

  txmod::core::IntegritySubsystem ics(&db);
  CHECK_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  CHECK_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));

  // One transaction inserting a batch of new beers (all valid).
  std::string inserts = "insert(beer, {";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) inserts += ", ";
    inserts += StrCat("(\"new", i, "\", \"ale\", \"brewery", i % kBreweries,
                      "\", 5.5)");
  }
  inserts += "});";
  txmod::algebra::AlgebraParser parser(&db.schema());
  auto txn = parser.ParseTransaction(inserts);
  CHECK_OK(txn.status());
  auto modified = ics.Modify(*txn);
  CHECK_OK(modified.status());

  const std::map<std::string, parallel::FragmentationScheme> kGood = {
      {"beer",
       parallel::FragmentationScheme{parallel::FragmentationKind::kHash, 2}},
      {"brewery",
       parallel::FragmentationScheme{parallel::FragmentationKind::kHash, 0}},
  };
  const std::map<std::string, parallel::FragmentationScheme> kBad = {
      {"beer", parallel::FragmentationScheme{
                   parallel::FragmentationKind::kRoundRobin, 0}},
      {"brewery", parallel::FragmentationScheme{
                      parallel::FragmentationKind::kRoundRobin, 0}},
  };

  for (const auto& [label, schemes] :
       {std::pair{"key/foreign-key fragmentation (the PRISMA setup)", kGood},
        std::pair{"round-robin fragmentation (needs redistribution)",
                  kBad}}) {
    std::cout << "=== " << label << " ===\n";
    std::printf("%6s %14s %14s %12s %10s\n", "nodes", "simulated_ms",
                "speedup", "transferred", "messages");
    double base_ms = 0;
    for (int nodes : {1, 2, 4, 8}) {
      Database copy = db.Clone();
      auto pdb = parallel::ParallelDatabase::Partition(copy, schemes, nodes);
      CHECK_OK(pdb.status());
      parallel::ParallelExecutor exec(&*pdb, parallel::ParallelOptions{});
      auto result = exec.Execute(*modified);
      CHECK_OK(result.status());
      if (!result->committed) {
        std::cerr << "unexpected abort: " << result->abort_reason << "\n";
        return 1;
      }
      const double ms = result->stats.simulated_us() / 1000.0;
      if (nodes == 1) base_ms = ms;
      std::printf("%6d %14.2f %13.2fx %12llu %10llu\n", nodes, ms,
                  base_ms / ms,
                  static_cast<unsigned long long>(
                      result->stats.tuples_transferred()),
                  static_cast<unsigned long long>(result->stats.messages()));
    }
    std::cout << "\n";
  }
  std::cout << "The key/foreign-key fragmentation keeps the referential\n"
               "check node-local (near-ideal speedup); round-robin pays\n"
               "redistribution on every check.\n";
  return 0;
}
